// Package msg implements IMPACC's communication engine (paper §3.7, §3.8):
// the per-node message handler thread, the in-order lock-free MPSC command
// queues between task threads and the handler, FIFO message matching, the
// message fusion technique (a matched intra-node send/recv pair becomes one
// HtoH/HtoD/DtoH/DtoD copy), direct device-to-device copies over a shared
// PCIe root complex, node heap aliasing for read-only producer-consumer
// pairs, and the internode paths (GPUDirect RDMA or pinned-buffer staging).
//
// The same hub also runs the legacy MPI+OpenACC baseline: tasks are then
// OS processes with private address spaces, intra-node transport stages
// through shared memory with a redundant host-to-host copy, and device
// buffers are not accepted (applications stage them explicitly).
package msg

import (
	"fmt"

	"impacc/internal/device"
	"impacc/internal/mpsc"
	"impacc/internal/sim"
	"impacc/internal/telemetry"
	"impacc/internal/topo"
	"impacc/internal/xmem"
)

// Wildcards for receive matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Endpoint is one task's communication identity: its rank, node, address
// space (shared per node under IMPACC, private per task under legacy), and
// device context.
type Endpoint struct {
	Rank  int
	Node  int
	Space *xmem.Space
	Ctx   *device.Context
}

// Config selects the hub's behaviour. The defaults for each mode live in
// the core runtime; individual features toggle independently for ablation
// benchmarks.
type Config struct {
	// Legacy switches the hub to the MPI+OpenACC baseline transport.
	Legacy bool
	// Fusion enables the message fusion technique (IMPACC).
	Fusion bool
	// Aliasing enables node heap aliasing (IMPACC).
	Aliasing bool
	// RDMA enables GPUDirect-RDMA internode transfers from/to device
	// memory without host staging, where the fabric supports it.
	RDMA bool
	// DirectP2P enables direct DtoD copies over a shared root complex.
	DirectP2P bool
	// ThreadMultiple mirrors the underlying MPI library's threading
	// support; when false, internode calls from one node serialize.
	ThreadMultiple bool

	// CmdOverhead is the task-side cost of creating a message command
	// and enqueuing it (IMPACC intra-node path).
	CmdOverhead sim.Dur
	// HandlerOverhead is the handler-side cost per processed command.
	HandlerOverhead sim.Dur
	// AliasOverhead is the cost of applying node heap aliasing.
	AliasOverhead sim.Dur
	// MPIOverhead is the per-call cost of the underlying MPI library.
	MPIOverhead sim.Dur

	// NetTimeout, when positive, bounds how long a receive posted through
	// PostNetRecv waits for its message before failing with a *NetError.
	// Zero disables timeouts (healthy-run behavior is unchanged).
	NetTimeout sim.Dur
	// MaxNetRetries bounds send re-attempts across a down link before the
	// command fails; zero takes a default when a fault model is attached.
	MaxNetRetries int
	// NetBackoff is the first send-retry delay; each further attempt
	// doubles it. Zero takes a default when a fault model is attached.
	NetBackoff sim.Dur
}

// Cmd is one send or receive command. Task threads create commands and
// enqueue them; the handler matches pairs and completes them.
type Cmd struct {
	IsSend bool
	Src    int // sender rank (AnySource allowed on receives)
	Dst    int // receiver rank
	Tag    int // message tag (AnyTag allowed on receives)
	Comm   int // communicator context id (0 = MPI_COMM_WORLD)
	Addr   xmem.Addr
	Bytes  int64
	Ep     *Endpoint
	// ReadOnly carries the IMPACC directive's readonly attribute
	// (#pragma acc mpi sendbuf(readonly) / recvbuf(readonly)).
	ReadOnly bool
	// Done fires when the operation completes (buffer reusable).
	Done *sim.Event
	// Aliased reports (after completion) that node heap aliasing served
	// this pair with zero copies.
	Aliased bool
	// Err records a completion error; inspect after Done fires.
	Err error
	// MatchedSrc/MatchedTag/MatchedBytes record, on a completed receive,
	// which message satisfied it (MPI_Status.MPI_SOURCE / MPI_TAG and the
	// received size) — meaningful for wildcard receives.
	MatchedSrc, MatchedTag int
	MatchedBytes           int64
	// TraceID tags the command for causal tracing (0 = untraced); PostedAt
	// records when the task initiated the operation. Both are set by the
	// core runtime when a tracer is attached and surface in Hub.OnMatch.
	TraceID  uint64
	PostedAt sim.Time

	snapshot []byte // eager-buffered data for internode sends
	// matched marks a receive the handler has paired with a message; a
	// NetTimeout deadline firing after this point is a no-op even though
	// Done waits on the transfer stages.
	matched bool
	// seq is the hub-local posting order stamp, assigned when the command
	// parks in a pending structure; "earliest posted" comparisons across
	// the keyed queues and the wildcard list reduce to min-seq.
	seq uint64
}

// accepts reports whether receive r takes a message with the given concrete
// envelope. Matching is scoped to the communicator context: wildcards never
// cross communicators.
func (r *Cmd) accepts(comm, dst, src, tag int) bool {
	if r.Comm != comm || r.Dst != dst {
		return false
	}
	if r.Src != AnySource && r.Src != src {
		return false
	}
	if r.Tag != AnyTag && r.Tag != tag {
		return false
	}
	return true
}

// FaultModel is the slice of a chaos plan the hub consults: whole-link and
// RDMA-path availability per node over virtual time. The internal/fault
// package's Plan satisfies it; the hub depends only on this interface.
type FaultModel interface {
	LinkUp(node int, at sim.Time) bool
	RDMAUp(node int, at sim.Time) bool
}

// NetError is the failure report surfaced on Cmd.Err when the resilience
// layer gives up on an internode command instead of wedging the handler.
type NetError struct {
	Op       string // "send" or "recv"
	Src, Dst int
	Tag      int
	Bytes    int64
	Attempts int      // send attempts made (0 for receive timeouts)
	At       sim.Time // virtual time of the failure
}

func (e *NetError) Error() string {
	if e.Op == "recv" {
		return fmt.Sprintf("msg: recv src=%d dst=%d tag=%d timed out at t=%dns", e.Src, e.Dst, e.Tag, int64(e.At))
	}
	return fmt.Sprintf("msg: send src=%d dst=%d tag=%d (%d bytes) gave up after %d attempts at t=%dns",
		e.Src, e.Dst, e.Tag, e.Bytes, e.Attempts, int64(e.At))
}

// Resilience defaults used when a fault model is attached but the config
// leaves the knobs zero.
const (
	defaultNetRetries = 8
	defaultNetBackoff = 100 * sim.Microsecond
)

// netMsg is an internode message arriving at the destination node: the
// entry unit of the pending internode message queue.
type netMsg struct {
	Src, Dst, Tag int
	Comm          int
	Bytes         int64
	SrcEp         *Endpoint
	SrcAddr       xmem.Addr
	snapshot      []byte
	// direct marks a GPUDirect RDMA transfer that has already landed in
	// device memory (no receive-side staging copy).
	direct bool
	seq    uint64 // hub-local arrival order stamp (see Cmd.seq)
	// SendID/SendPost carry the sending command's trace identity across the
	// network so the destination hub can report the match (see Hub.OnMatch).
	SendID   uint64
	SendPost sim.Time
}

// Stats is a snapshot of the hub's counters, used by the Figure 6/7
// experiments and the run report. The live counts are telemetry counters
// (the single source of truth); Hub.Stats materializes this view.
type Stats struct {
	IntraMsgs    uint64 // intra-node commands processed
	NetIn        uint64 // internode messages received
	NetOut       uint64 // internode messages sent
	FusedCopies  uint64 // matched pairs served by one fused copy
	LegacyCopies uint64 // legacy shared-memory transport copies
	Aliases      uint64 // pairs served by node heap aliasing
	RDMADirect   uint64 // internode transfers using GPUDirect RDMA
	Staged       uint64 // internode transfers staged through host memory
}

// Telemetry family names. Every hub counter family carries a node label.
const (
	IntraMsgsTotal    = "msg_intra_msgs_total"
	NetInTotal        = "msg_net_in_total"
	NetOutTotal       = "msg_net_out_total"
	FusedCopiesTotal  = "msg_fused_copies_total"
	LegacyCopiesTotal = "msg_legacy_copies_total"
	AliasesTotal      = "msg_aliases_total"
	RDMADirectTotal   = "msg_rdma_direct_total"
	StagedTotal       = "msg_staged_total"
	// IntraQueuePeak / PendingNetPeak gauge the deepest observed backlog
	// of the intra-node message queue and the pending internode message
	// queue (§3.7 handler pressure).
	IntraQueuePeak = "msg_intra_queue_peak"
	PendingNetPeak = "msg_pending_net_peak"
)

// Resilience family names. These register lazily in SetFaults so healthy
// (chaos-free) runs publish no extra families and their metric snapshots
// stay byte-identical to pre-chaos baselines.
const (
	NetRetriesTotal  = "msg_net_retries_total"
	NetTimeoutsTotal = "msg_net_timeouts_total"
	NetReroutedTotal = "msg_net_rerouted_total"
	NetFailuresTotal = "msg_net_failures_total"
)

// hubCounters are the hub's live telemetry handles.
type hubCounters struct {
	intraMsgs, netIn, netOut       *telemetry.Counter
	fusedCopies, legacyCopies      *telemetry.Counter
	aliases, rdmaDirect, staged    *telemetry.Counter
	intraQueuePeak, pendingNetPeak *telemetry.Gauge
}

// faultCounters are the resilience telemetry handles; nil on healthy runs.
type faultCounters struct {
	retries, timeouts, rerouted, failures *telemetry.Counter
}

// Hub is the per-node message engine. Under IMPACC it embodies the single
// message handler thread of Figure 1; under legacy it stands in for the
// underlying MPI library's shared-memory transport.
type Hub struct {
	Eng  *sim.Engine
	Fab  *topo.Fabric
	Node int
	Cfg  Config
	Heap *xmem.HeapTable

	// OnMatch, when set, is invoked at every send/recv match instant with
	// the pair's trace IDs, the send's posting time, and the payload size —
	// the hook the causal tracer uses to record message edges. Called only
	// when both sides carry a trace ID.
	OnMatch func(sendID, recvID uint64, post sim.Time, bytes int64)
	// OnFault, when set, is invoked at the end of every injected resilience
	// interval (send-retry backoff) with the affected rank and the interval
	// bounds — the hook the causal tracer uses to attribute fault time.
	OnFault func(kind string, rank int, start, end sim.Time)

	ctr    hubCounters
	fctr   *faultCounters
	reg    *telemetry.Registry
	faults FaultModel

	intraQ   *mpsc.Queue[*Cmd]    // intra-node message queue
	pendingQ *mpsc.Queue[*netMsg] // pending internode message queue
	// handlerCPU serializes the single message handler thread's per-command
	// processing time: commands from every task queue up on it in FIFO
	// order, exactly like the paper's single consumer thread.
	handlerCPU *sim.FIFOResource

	// Matching state. Pending sends, concrete receives, and arrived
	// internode messages are indexed by their fully-concrete envelope
	// (comm, dst, src, tag), FIFO per key, so the common matching step is
	// O(1) amortized while MPI's non-overtaking order per (source, tag)
	// is preserved by construction. Receives with MPI_ANY_SOURCE or
	// MPI_ANY_TAG stay in a posting-order side list (wildcards are rare;
	// scanning it is bounded by the number of pending wildcard receives).
	// matchSeq stamps every parked entry so cross-structure "earliest
	// posted" ties resolve exactly as the historical linear scans did.
	matchSeq  uint64
	sendQ     map[matchKey][]*Cmd
	recvQ     map[matchKey][]*Cmd
	arrivedQ  map[matchKey][]*netMsg
	wildRecvs []*Cmd

	serial *sim.Semaphore // internode serialization without THREAD_MULTIPLE
}

// matchKey is a fully-concrete message envelope: the unit of FIFO matching.
type matchKey struct {
	comm, dst, src, tag int
}

// NewHub creates the node's message engine.
func NewHub(eng *sim.Engine, fab *topo.Fabric, node int, cfg Config, heap *xmem.HeapTable) *Hub {
	h := &Hub{
		Eng: eng, Fab: fab, Node: node, Cfg: cfg, Heap: heap,
		intraQ:     mpsc.New[*Cmd](),
		pendingQ:   mpsc.New[*netMsg](),
		handlerCPU: eng.NewFIFOResource(fmt.Sprintf("%s/handler", fab.Sys.Nodes[node].Name)),
		sendQ:      map[matchKey][]*Cmd{},
		recvQ:      map[matchKey][]*Cmd{},
		arrivedQ:   map[matchKey][]*netMsg{},
	}
	reg := eng.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry() // detached hub (tests); keep counting
	}
	name := fab.Sys.Nodes[node].Name
	h.ctr = hubCounters{
		intraMsgs:      reg.Counter(IntraMsgsTotal, "intra-node commands processed", "node", name),
		netIn:          reg.Counter(NetInTotal, "internode messages received", "node", name),
		netOut:         reg.Counter(NetOutTotal, "internode messages sent", "node", name),
		fusedCopies:    reg.Counter(FusedCopiesTotal, "matched pairs served by one fused copy", "node", name),
		legacyCopies:   reg.Counter(LegacyCopiesTotal, "legacy shared-memory transport copies", "node", name),
		aliases:        reg.Counter(AliasesTotal, "pairs served by node heap aliasing", "node", name),
		rdmaDirect:     reg.Counter(RDMADirectTotal, "internode transfers using GPUDirect RDMA", "node", name),
		staged:         reg.Counter(StagedTotal, "internode transfers staged through host memory", "node", name),
		intraQueuePeak: reg.Gauge(IntraQueuePeak, "deepest observed intra-node message queue backlog", "node", name),
		pendingNetPeak: reg.Gauge(PendingNetPeak, "deepest observed pending internode message backlog", "node", name),
	}
	h.reg = reg
	if !cfg.ThreadMultiple {
		h.serial = eng.NewSemaphore(1, fmt.Sprintf("hub%d-serial", node))
	}
	return h
}

// SetFaults attaches a chaos fault model. The resilience counters register
// here — not in NewHub — so healthy runs publish no chaos families.
func (h *Hub) SetFaults(fm FaultModel) {
	h.faults = fm
	if fm == nil {
		h.fctr = nil
		return
	}
	name := h.Fab.Sys.Nodes[h.Node].Name
	h.fctr = &faultCounters{
		retries:  h.reg.Counter(NetRetriesTotal, "internode send attempts deferred by a down link", "node", name),
		timeouts: h.reg.Counter(NetTimeoutsTotal, "internode receives failed by timeout", "node", name),
		rerouted: h.reg.Counter(NetReroutedTotal, "RDMA transfers rerouted to host staging", "node", name),
		failures: h.reg.Counter(NetFailuresTotal, "internode commands failed after exhausting retries", "node", name),
	}
}

// netRetries / netBackoff resolve the resilience knobs, falling back to the
// package defaults when a fault model is attached with the knobs unset.
func (h *Hub) netRetries() int {
	if h.Cfg.MaxNetRetries > 0 {
		return h.Cfg.MaxNetRetries
	}
	return defaultNetRetries
}

func (h *Hub) netBackoff() sim.Dur {
	if h.Cfg.NetBackoff > 0 {
		return h.Cfg.NetBackoff
	}
	return defaultNetBackoff
}

// Stats snapshots the hub's telemetry counters into the legacy view.
func (h *Hub) Stats() Stats {
	return Stats{
		IntraMsgs:    uint64(h.ctr.intraMsgs.Value()),
		NetIn:        uint64(h.ctr.netIn.Value()),
		NetOut:       uint64(h.ctr.netOut.Value()),
		FusedCopies:  uint64(h.ctr.fusedCopies.Value()),
		LegacyCopies: uint64(h.ctr.legacyCopies.Value()),
		Aliases:      uint64(h.ctr.aliases.Value()),
		RDMADirect:   uint64(h.ctr.rdmaDirect.Value()),
		Staged:       uint64(h.ctr.staged.Value()),
	}
}

// dispatch schedules the handler thread to consume the next queued item
// after its per-command processing time.
func (h *Hub) dispatch(net bool) {
	_, end := h.handlerCPU.UseAsync(h.Cfg.HandlerOverhead)
	h.Eng.At(end, func() {
		if net {
			if m, ok := h.pendingQ.Pop(); ok {
				h.handleNet(m)
			}
			return
		}
		if cmd, ok := h.intraQ.Pop(); ok {
			h.handleCmd(cmd)
		}
	})
}

// HandlerBusy reports the handler thread's accumulated processing time.
func (h *Hub) HandlerBusy() sim.Dur { return h.handlerCPU.BusyTime }

// PostIntra submits an intra-node command from the calling task (or stream)
// process. The task pays the command-creation overhead; the handler does
// the rest (paper §3.7: "the task threads shift their intra-node
// communication onto the communication thread by inserting message commands
// into the intra-node message queues").
func (h *Hub) PostIntra(p *sim.Proc, cmd *Cmd) {
	over := h.Cfg.CmdOverhead
	if h.Cfg.Legacy {
		over = h.Cfg.MPIOverhead
	}
	if over > 0 {
		p.Sleep(over)
	}
	h.ctr.intraMsgs.Inc()
	h.intraQ.Push(cmd)
	h.ctr.intraQueuePeak.SetMax(float64(h.intraQ.Len()))
	h.dispatch(false)
}

func (h *Hub) handleCmd(cmd *Cmd) {
	if cmd.IsSend {
		if r := h.takeRecvFor(cmd.Comm, cmd.Dst, cmd.Src, cmd.Tag); r != nil {
			h.completePair(cmd, r)
			return
		}
		h.stamp(&cmd.seq)
		k := matchKey{cmd.Comm, cmd.Dst, cmd.Src, cmd.Tag}
		h.sendQ[k] = append(h.sendQ[k], cmd)
		return
	}
	// Receive: first try pending intra sends, then arrived internode
	// messages (distinct source ranks; FIFO within each origin).
	if cmd.Done.Fired() {
		return // timed out before the handler dequeued it
	}
	if s, k := h.peekSendFor(cmd); s != nil {
		h.popSendQ(k)
		h.completePair(s, cmd)
		return
	}
	if m, k := h.peekArrivedFor(cmd); m != nil {
		h.popArrivedQ(k)
		h.completeNet(m, cmd)
		return
	}
	h.stamp(&cmd.seq)
	if cmd.Src == AnySource || cmd.Tag == AnyTag {
		h.wildRecvs = append(h.wildRecvs, cmd)
	} else {
		k := matchKey{cmd.Comm, cmd.Dst, cmd.Src, cmd.Tag}
		h.recvQ[k] = append(h.recvQ[k], cmd)
	}
}

// stamp assigns the next posting-order sequence number.
func (h *Hub) stamp(seq *uint64) {
	h.matchSeq++
	*seq = h.matchSeq
}

// takeRecvFor removes and returns the earliest-posted receive accepting the
// concrete envelope, considering both the keyed FIFO and the wildcard list;
// nil when none matches. Sequence stamps are unique, so the min-seq winner
// is deterministic.
func (h *Hub) takeRecvFor(comm, dst, src, tag int) *Cmd {
	k := matchKey{comm, dst, src, tag}
	// Receives abandoned by a NetTimeout stay parked until matching next
	// touches their queue; purge them here.
	for len(h.recvQ[k]) > 0 && h.recvQ[k][0].Done.Fired() {
		h.popRecvQ(k)
	}
	var best *Cmd
	wildIdx := -1
	if q := h.recvQ[k]; len(q) > 0 {
		best = q[0]
	}
	// wildRecvs is in posting order, so the first live acceptor is the
	// earliest wildcard candidate.
	for i := 0; i < len(h.wildRecvs); {
		r := h.wildRecvs[i]
		if r.Done.Fired() {
			h.wildRecvs = append(h.wildRecvs[:i], h.wildRecvs[i+1:]...)
			continue
		}
		if r.accepts(comm, dst, src, tag) {
			if best == nil || r.seq < best.seq {
				best, wildIdx = r, i
			}
			break
		}
		i++
	}
	switch {
	case best == nil:
		return nil
	case wildIdx >= 0:
		h.wildRecvs = append(h.wildRecvs[:wildIdx], h.wildRecvs[wildIdx+1:]...)
	default:
		h.popRecvQ(k)
	}
	return best
}

// peekSendFor returns the earliest-queued pending send the receive accepts,
// plus its key, without consuming it. A concrete receive is one map lookup;
// a wildcard receive takes the min-seq head across matching keys (unique
// stamps keep this independent of map iteration order).
func (h *Hub) peekSendFor(r *Cmd) (*Cmd, matchKey) {
	if r.Src != AnySource && r.Tag != AnyTag {
		k := matchKey{r.Comm, r.Dst, r.Src, r.Tag}
		if q := h.sendQ[k]; len(q) > 0 {
			return q[0], k
		}
		return nil, matchKey{}
	}
	var best *Cmd
	var bestK matchKey
	for k, q := range h.sendQ {
		if r.accepts(k.comm, k.dst, k.src, k.tag) && (best == nil || q[0].seq < best.seq) {
			best, bestK = q[0], k
		}
	}
	return best, bestK
}

// peekArrivedFor is peekSendFor over the arrived internode messages.
func (h *Hub) peekArrivedFor(r *Cmd) (*netMsg, matchKey) {
	if r.Src != AnySource && r.Tag != AnyTag {
		k := matchKey{r.Comm, r.Dst, r.Src, r.Tag}
		if q := h.arrivedQ[k]; len(q) > 0 {
			return q[0], k
		}
		return nil, matchKey{}
	}
	var best *netMsg
	var bestK matchKey
	for k, q := range h.arrivedQ {
		if r.accepts(k.comm, k.dst, k.src, k.tag) && (best == nil || q[0].seq < best.seq) {
			best, bestK = q[0], k
		}
	}
	return best, bestK
}

// popSendQ / popRecvQ / popArrivedQ drop the head of a keyed FIFO, deleting
// the key when it empties (constant-time, no mid-slice splicing).
func (h *Hub) popSendQ(k matchKey) {
	q := h.sendQ[k]
	q[0] = nil
	if len(q) == 1 {
		delete(h.sendQ, k)
	} else {
		h.sendQ[k] = q[1:]
	}
}

func (h *Hub) popRecvQ(k matchKey) {
	q := h.recvQ[k]
	q[0] = nil
	if len(q) == 1 {
		delete(h.recvQ, k)
	} else {
		h.recvQ[k] = q[1:]
	}
}

func (h *Hub) popArrivedQ(k matchKey) {
	q := h.arrivedQ[k]
	q[0] = nil
	if len(q) == 1 {
		delete(h.arrivedQ, k)
	} else {
		h.arrivedQ[k] = q[1:]
	}
}

// runChain executes cost stages back to back: each stage is invoked at the
// completion time of the previous one and returns its own completion time.
// done runs after the final stage.
func (h *Hub) runChain(stages []func() sim.Time, done func()) {
	var step func(i int)
	step = func(i int) {
		if i == len(stages) {
			done()
			return
		}
		end := stages[i]()
		h.Eng.At(end, func() { step(i + 1) })
	}
	step(0)
}

func (h *Hub) fail(send, recv *Cmd, err error) {
	if send != nil {
		send.Err = err
		send.Done.Fire()
	}
	if recv != nil {
		recv.Err = err
		recv.Done.Fire()
	}
}

// timeoutRecv fails a posted receive whose NetTimeout deadline elapsed
// unmatched. The command may still sit in a matching structure; fired
// entries are purged lazily the next time matching touches their queue.
func (h *Hub) timeoutRecv(cmd *Cmd) {
	if cmd.matched || cmd.Done.Fired() {
		return
	}
	if h.fctr != nil {
		h.fctr.timeouts.Inc()
	}
	h.fail(nil, cmd, &NetError{Op: "recv", Src: cmd.Src, Dst: cmd.Dst, Tag: cmd.Tag, At: h.Eng.Now()})
}

// completePair serves a matched intra-node send/receive pair: node heap
// aliasing when every requirement holds, otherwise one fused copy (IMPACC)
// or the legacy staged transport.
func (h *Hub) completePair(send, recv *Cmd) {
	recv.matched = true
	if recv.Bytes < send.Bytes {
		h.fail(send, recv, fmt.Errorf("msg: truncation: recv %d bytes < send %d", recv.Bytes, send.Bytes))
		return
	}
	if h.OnMatch != nil && send.TraceID != 0 && recv.TraceID != 0 {
		h.OnMatch(send.TraceID, recv.TraceID, send.PostedAt, send.Bytes)
	}
	recv.MatchedSrc, recv.MatchedTag, recv.MatchedBytes = send.Src, send.Tag, send.Bytes
	if send.Bytes == 0 {
		// Zero-byte message: synchronization only, nothing to move.
		at := h.Eng.Now() + sim.Time(h.Cfg.AliasOverhead)
		h.Eng.At(at, func() {
			send.Done.Fire()
			recv.Done.Fire()
		})
		return
	}
	if h.tryAlias(send, recv) {
		return
	}
	n := send.Bytes
	dloc, err := recv.Ep.Space.Lookup(recv.Addr)
	if err != nil {
		h.fail(send, recv, err)
		return
	}
	sloc, err := send.Ep.Space.Lookup(send.Addr)
	if err != nil {
		h.fail(send, recv, err)
		return
	}
	dir := device.Classify(dloc, sloc)
	start := h.Eng.Now()

	var stages []func() sim.Time
	if h.Cfg.Legacy {
		// Figure 6 (a): inter-process transport with a redundant
		// host-to-host copy — send buffer -> shm segment -> recv buffer.
		stages = append(stages,
			func() sim.Time { return h.Fab.ShmCopyAsync(h.Node, n) },
			func() sim.Time { return h.Fab.ShmCopyAsync(h.Node, n) },
		)
		h.ctr.legacyCopies.Add(2)
	} else {
		stages = h.fusedStages(dir, dloc, sloc, n)
		h.ctr.fusedCopies.Inc()
	}
	h.runChain(stages, func() {
		if err := xmem.CopyBetween(recv.Ep.Space, recv.Addr, send.Ep.Space, send.Addr, n); err != nil {
			h.fail(send, recv, err)
			return
		}
		elapsed := sim.Dur(h.Eng.Now() - start)
		recv.Ep.Ctx.Record(dir, n, elapsed)
		send.Done.Fire()
		recv.Done.Fire()
	})
}

// fusedStages builds the cost chain for an IMPACC fused copy (Figure 6 b/c).
func (h *Hub) fusedStages(dir device.Direction, dloc, sloc xmem.Loc, n int64) []func() sim.Time {
	switch dir {
	case device.HtoH:
		return []func() sim.Time{func() sim.Time { return h.Fab.HostCopyAsync(h.Node, n) }}
	case device.HtoD:
		d := dloc.Device()
		return []func() sim.Time{func() sim.Time { return h.Fab.PCIeCopyAsync(h.Node, d, -1, n, true) }}
	case device.DtoH:
		d := sloc.Device()
		return []func() sim.Time{func() sim.Time { return h.Fab.PCIeCopyAsync(h.Node, d, -1, n, true) }}
	default: // DtoD
		sd, dd := sloc.Device(), dloc.Device()
		if sd == dd {
			bw := h.Fab.Sys.Nodes[h.Node].Devices[sd].MemBWGBs
			return []func() sim.Time{func() sim.Time {
				return h.Eng.Now() + sim.Time(sim.DurFromSeconds(2*float64(n)/(bw*1e9)))
			}}
		}
		if h.Cfg.DirectP2P && h.Fab.CanP2P(h.Node, sd, dd) {
			// Direct transfer between devices over PCIe without CPU or
			// system memory involvement (GPUDirect / DirectGMA).
			return []func() sim.Time{func() sim.Time { return h.Fab.P2PCopyAsync(h.Node, sd, dd, n) }}
		}
		return []func() sim.Time{
			func() sim.Time { return h.Fab.PCIeCopyAsync(h.Node, sd, -1, n, true) },
			func() sim.Time { return h.Fab.PCIeCopyAsync(h.Node, dd, -1, n, true) },
		}
	}
}

// tryAlias applies node heap aliasing when the five requirements of §3.8
// hold: same node (implied intra), both buffers in host heap memory, both
// calls carry the readonly attribute, the receive buffer is a whole heap
// allocation (no prior interior pointers), and the receive is fully
// overwritten (sizes equal).
func (h *Hub) tryAlias(send, recv *Cmd) bool {
	if h.Cfg.Legacy || !h.Cfg.Aliasing || h.Heap == nil {
		return false
	}
	if !send.ReadOnly || !recv.ReadOnly {
		return false
	}
	if send.Bytes != recv.Bytes {
		return false
	}
	sloc, err := send.Ep.Space.Lookup(send.Addr)
	if err != nil || sloc.Kind() != xmem.HostMem {
		return false
	}
	rloc, err := recv.Ep.Space.Lookup(recv.Addr)
	if err != nil || rloc.Kind() != xmem.HostMem {
		return false
	}
	sendEnt, ok := h.Heap.Containing(send.Addr)
	if !ok || send.Addr+xmem.Addr(send.Bytes) > sendEnt.Base+xmem.Addr(sendEnt.Size) {
		return false
	}
	recvEnt, ok := h.Heap.At(recv.Addr)
	if !ok || recvEnt.Size != recv.Bytes {
		return false
	}
	// Apply: alias the receive allocation onto the send data, retire the
	// receive heap, bump the send heap's reference count (Figure 7).
	if err := recv.Ep.Space.Alias(recv.Addr, send.Addr); err != nil {
		return false
	}
	if _, err := h.Heap.Share(send.Addr); err != nil {
		return false
	}
	h.Heap.Drop(recv.Addr)
	h.ctr.aliases.Inc()
	send.Aliased, recv.Aliased = true, true
	at := h.Eng.Now() + sim.Time(h.Cfg.AliasOverhead)
	h.Eng.At(at, func() {
		send.Done.Fire()
		recv.Done.Fire()
	})
	return true
}

// Probe reports whether a message matching (src, tag, comm) destined for
// dst is available without consuming it, returning its size. It checks
// pending intra-node sends and arrived internode messages — the state an
// MPI_Iprobe would see.
func (h *Hub) Probe(dst, src, tag, comm int) (bool, int64) {
	probe := &Cmd{Src: src, Dst: dst, Tag: tag, Comm: comm}
	if s, _ := h.peekSendFor(probe); s != nil {
		return true, s.Bytes
	}
	if m, _ := h.peekArrivedFor(probe); m != nil {
		return true, m.Bytes
	}
	return false, 0
}
