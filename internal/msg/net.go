package msg

import (
	"fmt"

	"impacc/internal/device"
	"impacc/internal/sim"
	"impacc/internal/xmem"
)

// PostNetSend initiates an internode send from the calling process toward
// dst's hub. The caller pays the underlying-MPI call overhead (serialized
// per node when the library lacks MPI_THREAD_MULTIPLE, paper §3.7); the
// transfer itself progresses asynchronously and cmd.Done fires when the
// local buffer is reusable.
//
// Device-memory sends use GPUDirect RDMA when both NICs support it ("the
// runtime exploits it and transfers data directly from the device memory to
// a network adapter without staging through host memory"); otherwise the
// runtime stages through its pre-pinned host buffer with an asynchronous
// device-to-host copy chained to the network injection — the
// cuStreamAddCallback pattern of §3.7. When a fault model reports the RDMA
// path down, direct transfers degrade to the staging path instead.
func (h *Hub) PostNetSend(p *sim.Proc, cmd *Cmd, dst *Hub) {
	locked := false
	if h.serial != nil {
		h.serial.Acquire(p)
		locked = true
	}
	unlock := func() {
		if locked {
			h.serial.Release()
			locked = false
		}
	}
	if h.Cfg.MPIOverhead > 0 {
		p.Sleep(h.Cfg.MPIOverhead)
	}
	if cmd.Bytes == 0 {
		// Zero-byte message: a bare network round of latency only.
		unlock()
		h.ctr.netOut.Inc()
		m := &netMsg{Src: cmd.Src, Dst: cmd.Dst, Tag: cmd.Tag, Comm: cmd.Comm, SrcEp: cmd.Ep,
			SendID: cmd.TraceID, SendPost: cmd.PostedAt}
		h.netInject(cmd, m, dst, 0, 0)
		return
	}
	sloc, err := cmd.Ep.Space.Lookup(cmd.Addr)
	if err != nil {
		unlock()
		cmd.Err = err
		cmd.Done.Fire()
		return
	}
	onDevice := sloc.Kind() == xmem.DeviceMem
	if onDevice && h.Cfg.Legacy {
		unlock()
		cmd.Err = fmt.Errorf("msg: legacy MPI cannot send device memory; stage with acc update")
		cmd.Done.Fire()
		return
	}
	n := cmd.Bytes
	// Eager-buffer the payload so the sender may reuse its buffer the
	// moment Done fires. The snapshot is mandatory for backed spaces: the
	// sender's memory must never be read again after Done, so a buffer that
	// cannot be snapshotted (range escapes its segment) fails the send now
	// rather than corrupting the receive later.
	b, berr := cmd.Ep.Space.Bytes(cmd.Addr, n)
	if berr != nil {
		unlock()
		cmd.Err = berr
		cmd.Done.Fire()
		return
	}
	if b != nil {
		cmd.snapshot = append([]byte(nil), b...)
	}

	direct := onDevice && h.Cfg.RDMA && h.Fab.RDMACapable(h.Node, dst.Node)
	if direct && h.faults != nil {
		now := h.Eng.Now()
		if !h.faults.RDMAUp(h.Node, now) || !h.faults.RDMAUp(dst.Node, now) {
			// Graceful degradation: while the RDMA path flaps, fall back
			// to the pinned-buffer staging path instead of failing.
			direct = false
			h.fctr.rerouted.Inc()
		}
	}
	staged := onDevice && !direct
	var stages []func() sim.Time
	if staged {
		// Without MPI_THREAD_MULTIPLE the library's internal staging copy
		// is part of the serialized call (paper §3.7): hold the lock
		// until the device-to-host stage completes.
		dev := sloc.Device()
		stage := func() sim.Time {
			end := h.Fab.PCIeCopyAsync(h.Node, dev, -1, n, true)
			if locked {
				held := h.serial
				locked = false
				h.Eng.At(end, held.Release)
			}
			return end
		}
		stages = append(stages, stage)
		h.ctr.staged.Inc()
	}
	if direct {
		h.ctr.rdmaDirect.Inc()
	}
	if !staged {
		unlock() // host-memory and RDMA sends release the call lock here
	}
	h.ctr.netOut.Inc()
	m := &netMsg{
		Src: cmd.Src, Dst: cmd.Dst, Tag: cmd.Tag, Comm: cmd.Comm, Bytes: n,
		SrcEp: cmd.Ep, SrcAddr: cmd.Addr, snapshot: cmd.snapshot,
		direct: direct,
		SendID: cmd.TraceID, SendPost: cmd.PostedAt,
	}
	h.runChain(stages, func() {
		h.netInject(cmd, m, dst, n, 0)
	})
}

// netInject pushes a message onto the wire, deferring with deterministic
// exponential backoff while the fault model holds the sender's link down.
// Exhausting the retry budget surfaces a *NetError on the send command
// instead of wedging the transfer.
func (h *Hub) netInject(cmd *Cmd, m *netMsg, dst *Hub, n int64, attempt int) {
	if h.faults != nil && !h.faults.LinkUp(h.Node, h.Eng.Now()) {
		if attempt >= h.netRetries() {
			h.fctr.failures.Inc()
			h.fail(cmd, nil, &NetError{Op: "send", Src: cmd.Src, Dst: cmd.Dst, Tag: cmd.Tag,
				Bytes: n, Attempts: attempt, At: h.Eng.Now()})
			return
		}
		h.fctr.retries.Inc()
		shift := attempt
		if shift > 20 {
			shift = 20 // keep the doubling bounded
		}
		start := h.Eng.Now()
		h.Eng.After(h.netBackoff()<<uint(shift), func() {
			if h.OnFault != nil {
				h.OnFault("retry", cmd.Src, start, h.Eng.Now())
			}
			h.netInject(cmd, m, dst, n, attempt+1)
		})
		return
	}
	// The transfer is priced in two halves so the destination may live on
	// another shard engine: the source NIC's injection side is charged here,
	// and the ejection side is charged on the destination's engine when the
	// trailing byte arrives (at least one wire latency in the future, which
	// is exactly the shard group's lookahead guarantee). The sender's buffer
	// is reusable once the message has left the wire, so Done fires at
	// arrival time regardless of ejection-side contention — a contended
	// destination NIC delays only delivery, never the sender.
	arrive, occupy := h.Fab.NetInjectAsync(h.Node, dst.Node, n)
	h.Eng.At(arrive, func() { cmd.Done.Fire() })
	dstEng := h.Fab.Engine(dst.Node)
	h.Eng.Post(dstEng, arrive, func() {
		deliver := h.Fab.NetAcceptAsync(dst.Node, occupy)
		if deliver == arrive {
			// Uncontended ejection NIC: the message is deliverable the
			// instant it arrives, so skip the extra deferral event. Whether
			// the NIC is busy is simulation state, so the branch is as
			// deterministic as the schedule itself.
			dst.deliver(m)
			return
		}
		dstEng.At(deliver, func() { dst.deliver(m) })
	})
}

// deliver places an arrived internode message on the pending internode
// message queue and wakes the handler.
func (h *Hub) deliver(m *netMsg) {
	h.pendingQ.Push(m)
	h.ctr.pendingNetPeak.SetMax(float64(h.pendingQ.Len()))
	h.dispatch(true)
}

// PostNetRecv submits a receive for an internode (or any-source) message.
// The caller pays the MPI call overhead; matching happens in the handler.
// A positive Config.NetTimeout arms a deadline: a receive still unmatched
// when it elapses fails with a *NetError instead of blocking forever.
func (h *Hub) PostNetRecv(p *sim.Proc, cmd *Cmd) {
	if h.serial != nil {
		h.serial.Acquire(p)
	}
	if h.Cfg.MPIOverhead > 0 {
		p.Sleep(h.Cfg.MPIOverhead)
	}
	if h.serial != nil {
		h.serial.Release()
	}
	if h.Cfg.NetTimeout > 0 {
		h.Eng.After(h.Cfg.NetTimeout, func() { h.timeoutRecv(cmd) })
	}
	h.intraQ.Push(cmd)
	h.ctr.intraQueuePeak.SetMax(float64(h.intraQ.Len()))
	h.dispatch(false)
}

// handleNet matches an arrived internode message against posted receives,
// or parks it with the unexpected messages.
func (h *Hub) handleNet(m *netMsg) {
	if r := h.takeRecvFor(m.Comm, m.Dst, m.Src, m.Tag); r != nil {
		h.completeNet(m, r)
		return
	}
	h.stamp(&m.seq)
	k := matchKey{m.Comm, m.Dst, m.Src, m.Tag}
	h.arrivedQ[k] = append(h.arrivedQ[k], m)
}

// completeNet finishes an internode receive: an HtoD staging copy when the
// receive buffer is device memory and the transfer was not GPUDirect
// ("When a pending command completes its non-blocking communication, the
// message handler thread calls cuMemcpyAsync ... to write data to the
// device memory"), then the payload lands and Done fires.
func (h *Hub) completeNet(m *netMsg, recv *Cmd) {
	recv.matched = true
	if recv.Bytes < m.Bytes {
		h.fail(nil, recv, fmt.Errorf("msg: truncation: recv %d bytes < message %d", recv.Bytes, m.Bytes))
		return
	}
	if h.OnMatch != nil && m.SendID != 0 && recv.TraceID != 0 {
		h.OnMatch(m.SendID, recv.TraceID, m.SendPost, m.Bytes)
	}
	recv.MatchedSrc, recv.MatchedTag, recv.MatchedBytes = m.Src, m.Tag, m.Bytes
	if m.Bytes == 0 {
		h.ctr.netIn.Inc()
		recv.Done.Fire()
		return
	}
	dloc, err := recv.Ep.Space.Lookup(recv.Addr)
	if err != nil {
		h.fail(nil, recv, err)
		return
	}
	onDevice := dloc.Kind() == xmem.DeviceMem
	if onDevice && h.Cfg.Legacy {
		h.fail(nil, recv, fmt.Errorf("msg: legacy MPI cannot receive into device memory"))
		return
	}
	n := m.Bytes
	start := h.Eng.Now()
	var stages []func() sim.Time
	if onDevice && !m.direct {
		dev := dloc.Device()
		stages = append(stages, func() sim.Time {
			return h.Fab.PCIeCopyAsync(h.Node, dev, -1, n, true)
		})
		h.ctr.staged.Inc()
	}
	h.ctr.netIn.Inc()
	h.runChain(stages, func() {
		if err := h.landPayload(m, recv, n); err != nil {
			h.fail(nil, recv, err)
			return
		}
		dir := device.HtoH
		if onDevice {
			dir = device.HtoD
		}
		recv.Ep.Ctx.Record(dir, n, sim.Dur(h.Eng.Now()-start))
		recv.Done.Fire()
	})
}

// landPayload writes the eager snapshot into the receive buffer. The live
// source space is never read here: the sender's Done fired when the message
// left the wire, so its buffer may already hold new data (the stale-read
// hazard). A backed destination with no snapshot means the send side was
// unbacked — a timing-only pairing — and there is nothing to land.
func (h *Hub) landPayload(m *netMsg, recv *Cmd, n int64) error {
	db, err := recv.Ep.Space.Bytes(recv.Addr, n)
	if err != nil {
		return err
	}
	if db == nil || m.snapshot == nil {
		return nil // unbacked on either side: timing-only run
	}
	copy(db, m.snapshot)
	return nil
}
