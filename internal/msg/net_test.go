package msg

import (
	"errors"
	"testing"

	"impacc/internal/sim"
	"impacc/internal/topo"
)

// stubFaults is a minimal FaultModel for exercising the resilience paths
// without pulling in the fault package (msg must not depend on it).
type stubFaults struct {
	linkUpAt sim.Time // link is down strictly before this instant
	rdmaDown bool
}

func (f *stubFaults) LinkUp(node int, at sim.Time) bool { return at >= f.linkUpAt }
func (f *stubFaults) RDMAUp(node int, at sim.Time) bool { return !f.rdmaDown }

// counterVal reads a hub counter registered on the shared engine registry.
func counterVal(eng *sim.Engine, h *Hub, family string) int64 {
	return eng.Metrics.Counter(family, "", "node", h.Fab.Sys.Nodes[h.Node].Name).Value()
}

// TestSendBufferReuseAfterDone is the regression test for the stale-read
// hazard: the sender overwrites its buffer the moment Done fires, long
// before the receiver posts. The receive must land the bytes that were in
// the buffer at post time, not the scribbles.
func TestSendBufferReuseAfterDone(t *testing.T) {
	eng, h0, h1, e0, e1 := twoNodeRig(t, topo.Titan(2), impaccCfg())
	const n = 2048
	src, _ := e0.Space.AllocHost(n, true)
	dst, _ := e1.Space.AllocHost(n, true)
	sb, _ := e0.Space.Bytes(src, n)
	for i := range sb {
		sb[i] = byte(i * 7)
	}
	s := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 3, Addr: src, Bytes: n, Ep: e0, Done: eng.NewEvent("s")}
	rc := &Cmd{Src: 0, Dst: 1, Tag: 3, Addr: dst, Bytes: n, Ep: e1, Done: eng.NewEvent("r")}
	eng.Spawn("sender", func(p *sim.Proc) {
		h0.PostNetSend(p, s, h1)
		s.Done.Wait(p)
		// Done means "buffer reusable": clobber it immediately.
		for i := range sb {
			sb[i] = 0xEE
		}
	})
	eng.Spawn("recver", func(p *sim.Proc) {
		p.Sleep(1 * sim.Second) // message parks unexpected; sender scribbled long ago
		h1.PostNetRecv(p, rc)
		rc.Done.Wait(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Err != nil || rc.Err != nil {
		t.Fatalf("errs: send=%v recv=%v", s.Err, rc.Err)
	}
	db, _ := e1.Space.Bytes(dst, n)
	for i := range db {
		if db[i] != byte(i*7) {
			t.Fatalf("stale read: byte %d = %#x, want %#x", i, db[i], byte(i*7))
		}
	}
}

// TestOversizedSendFailsEagerly: a send whose Bytes overruns its segment
// must fail at post time (the snapshot is mandatory), not silently send a
// short or corrupt payload.
func TestOversizedSendFailsEagerly(t *testing.T) {
	eng, h0, h1, e0, _ := twoNodeRig(t, topo.Titan(2), impaccCfg())
	src, _ := e0.Space.AllocHost(1024, true)
	s := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 1, Addr: src, Bytes: 2048, Ep: e0, Done: eng.NewEvent("s")}
	eng.Spawn("sender", func(p *sim.Proc) {
		h0.PostNetSend(p, s, h1)
		s.Done.Wait(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Err == nil {
		t.Fatal("oversized send succeeded; want range error")
	}
}

// TestInternodeTruncation: a too-small receive posted against an internode
// message fails with a truncation error instead of overflowing the buffer.
func TestInternodeTruncation(t *testing.T) {
	eng, h0, h1, e0, e1 := twoNodeRig(t, topo.Titan(2), impaccCfg())
	src, _ := e0.Space.AllocHost(1024, true)
	dst, _ := e1.Space.AllocHost(512, true)
	s := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 4, Addr: src, Bytes: 1024, Ep: e0, Done: eng.NewEvent("s")}
	rc := &Cmd{Src: 0, Dst: 1, Tag: 4, Addr: dst, Bytes: 512, Ep: e1, Done: eng.NewEvent("r")}
	eng.Spawn("sender", func(p *sim.Proc) {
		h0.PostNetSend(p, s, h1)
		s.Done.Wait(p)
	})
	eng.Spawn("recver", func(p *sim.Proc) {
		h1.PostNetRecv(p, rc)
		rc.Done.Wait(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Err != nil {
		t.Fatalf("send err = %v (wire transfer should succeed)", s.Err)
	}
	if rc.Err == nil {
		t.Fatal("truncated recv succeeded; want truncation error")
	}
}

// TestInternodeZeroByteParity: the zero-byte fast path must report the same
// match metadata (MatchedSrc/Tag/Bytes), fire the OnMatch hook, and count
// NetOut/NetIn exactly like the payload path.
func TestInternodeZeroByteParity(t *testing.T) {
	eng, h0, h1, e0, e1 := twoNodeRig(t, topo.Titan(2), impaccCfg())
	matches := 0
	var matchBytes int64 = -1
	h1.OnMatch = func(sendID, recvID uint64, post sim.Time, bytes int64) {
		matches++
		matchBytes = bytes
		if sendID != 11 || recvID != 22 {
			t.Errorf("OnMatch ids = (%d, %d), want (11, 22)", sendID, recvID)
		}
	}
	s := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 9, Bytes: 0, Ep: e0, Done: eng.NewEvent("s"), TraceID: 11}
	rc := &Cmd{Src: 0, Dst: 1, Tag: 9, Bytes: 0, Ep: e1, Done: eng.NewEvent("r"), TraceID: 22}
	eng.Spawn("sender", func(p *sim.Proc) {
		h0.PostNetSend(p, s, h1)
		s.Done.Wait(p)
	})
	eng.Spawn("recver", func(p *sim.Proc) {
		h1.PostNetRecv(p, rc)
		rc.Done.Wait(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rc.Err != nil || s.Err != nil {
		t.Fatalf("errs: send=%v recv=%v", s.Err, rc.Err)
	}
	if matches != 1 || matchBytes != 0 {
		t.Fatalf("OnMatch fired %d times (bytes %d), want once with 0 bytes", matches, matchBytes)
	}
	if rc.MatchedSrc != 0 || rc.MatchedTag != 9 || rc.MatchedBytes != 0 {
		t.Fatalf("match metadata = src %d tag %d bytes %d", rc.MatchedSrc, rc.MatchedTag, rc.MatchedBytes)
	}
	if h0.Stats().NetOut != 1 || h1.Stats().NetIn != 1 {
		t.Fatalf("net counters: out=%d in=%d, want 1/1", h0.Stats().NetOut, h1.Stats().NetIn)
	}
}

// TestLegacyRejectsDeviceRecv covers the receive side of the Legacy device
// memory rule: an internode message matched against a device-memory receive
// buffer must fail the receive, not crash or silently stage.
func TestLegacyRejectsDeviceRecv(t *testing.T) {
	eng, h0, h1, e0, e1 := twoNodeRig(t, topo.Titan(2), legacyCfg())
	src, _ := e0.Space.AllocHost(4096, true)
	dst, _ := e1.Ctx.MemAlloc(4096)
	s := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 5, Addr: src, Bytes: 4096, Ep: e0, Done: eng.NewEvent("s")}
	rc := &Cmd{Src: 0, Dst: 1, Tag: 5, Addr: dst, Bytes: 4096, Ep: e1, Done: eng.NewEvent("r")}
	eng.Spawn("sender", func(p *sim.Proc) {
		h0.PostNetSend(p, s, h1)
		s.Done.Wait(p)
	})
	eng.Spawn("recver", func(p *sim.Proc) {
		h1.PostNetRecv(p, rc)
		rc.Done.Wait(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rc.Err == nil {
		t.Fatal("legacy device recv succeeded; want rejection")
	}
}

// TestNetSendRetriesThroughOutage: with the link down until t=5ms, the send
// defers with backoff and eventually completes; the payload still lands and
// the retries are counted.
func TestNetSendRetriesThroughOutage(t *testing.T) {
	eng, h0, h1, e0, e1 := twoNodeRig(t, topo.Titan(2), impaccCfg())
	h0.SetFaults(&stubFaults{linkUpAt: sim.Time(5 * sim.Millisecond)})
	src, _ := e0.Space.AllocHost(1024, true)
	dst, _ := e1.Space.AllocHost(1024, true)
	sb, _ := e0.Space.Bytes(src, 1024)
	for i := range sb {
		sb[i] = byte(i)
	}
	s := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 6, Addr: src, Bytes: 1024, Ep: e0, Done: eng.NewEvent("s")}
	rc := &Cmd{Src: 0, Dst: 1, Tag: 6, Addr: dst, Bytes: 1024, Ep: e1, Done: eng.NewEvent("r")}
	faultSpans := 0
	h0.OnFault = func(kind string, rank int, start, end sim.Time) {
		if kind == "retry" {
			faultSpans++
		}
	}
	eng.Spawn("sender", func(p *sim.Proc) {
		h0.PostNetSend(p, s, h1)
		s.Done.Wait(p)
	})
	eng.Spawn("recver", func(p *sim.Proc) {
		h1.PostNetRecv(p, rc)
		rc.Done.Wait(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Err != nil || rc.Err != nil {
		t.Fatalf("errs: send=%v recv=%v", s.Err, rc.Err)
	}
	db, _ := e1.Space.Bytes(dst, 1024)
	for i := range db {
		if db[i] != byte(i) {
			t.Fatalf("payload mismatch at %d after retries", i)
		}
	}
	if got := counterVal(eng, h0, NetRetriesTotal); got == 0 {
		t.Fatal("no retries counted through a 5ms outage")
	} else if int64(faultSpans) != got {
		t.Fatalf("OnFault retry spans = %d, counter = %d", faultSpans, got)
	}
}

// TestNetSendExhaustsRetries: a permanently down link fails the send with a
// *NetError carrying the attempt count, and the pending receive fails by
// timeout instead of wedging the run.
func TestNetSendExhaustsRetries(t *testing.T) {
	cfg := impaccCfg()
	cfg.MaxNetRetries = 3
	cfg.NetBackoff = 10 * sim.Microsecond
	cfg.NetTimeout = 100 * sim.Millisecond
	eng, h0, h1, e0, e1 := twoNodeRig(t, topo.Titan(2), cfg)
	down := &stubFaults{linkUpAt: sim.Time(1 << 62)} // never
	h0.SetFaults(down)
	h1.SetFaults(down)
	src, _ := e0.Space.AllocHost(256, true)
	dst, _ := e1.Space.AllocHost(256, true)
	s := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 8, Addr: src, Bytes: 256, Ep: e0, Done: eng.NewEvent("s")}
	rc := &Cmd{Src: 0, Dst: 1, Tag: 8, Addr: dst, Bytes: 256, Ep: e1, Done: eng.NewEvent("r")}
	eng.Spawn("sender", func(p *sim.Proc) {
		h0.PostNetSend(p, s, h1)
		s.Done.Wait(p)
	})
	eng.Spawn("recver", func(p *sim.Proc) {
		h1.PostNetRecv(p, rc)
		rc.Done.Wait(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var ne *NetError
	if !errors.As(s.Err, &ne) || ne.Op != "send" || ne.Attempts != 3 {
		t.Fatalf("send err = %v, want *NetError op=send attempts=3", s.Err)
	}
	if !errors.As(rc.Err, &ne) || ne.Op != "recv" {
		t.Fatalf("recv err = %v, want *NetError op=recv (timeout)", rc.Err)
	}
	if got := counterVal(eng, h0, NetFailuresTotal); got != 1 {
		t.Fatalf("failure counter = %d, want 1", got)
	}
	if got := counterVal(eng, h1, NetTimeoutsTotal); got != 1 {
		t.Fatalf("timeout counter = %d, want 1", got)
	}
}

// TestTimedOutRecvDoesNotStealLateMessage: after a receive times out, a
// later message with the same key must match a freshly posted receive, not
// the dead one (the fired-command purge in takeRecvFor).
func TestTimedOutRecvDoesNotStealLateMessage(t *testing.T) {
	cfg := impaccCfg()
	cfg.NetTimeout = 1 * sim.Millisecond
	eng, h0, h1, e0, e1 := twoNodeRig(t, topo.Titan(2), cfg)
	src, _ := e0.Space.AllocHost(512, true)
	dst1, _ := e1.Space.AllocHost(512, true)
	dst2, _ := e1.Space.AllocHost(512, true)
	sb, _ := e0.Space.Bytes(src, 512)
	for i := range sb {
		sb[i] = byte(i ^ 0x5A)
	}
	s := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 2, Addr: src, Bytes: 512, Ep: e0, Done: eng.NewEvent("s")}
	r1 := &Cmd{Src: 0, Dst: 1, Tag: 2, Addr: dst1, Bytes: 512, Ep: e1, Done: eng.NewEvent("r1")}
	r2 := &Cmd{Src: 0, Dst: 1, Tag: 2, Addr: dst2, Bytes: 512, Ep: e1, Done: eng.NewEvent("r2")}
	eng.Spawn("sender", func(p *sim.Proc) {
		// Past r1's 1ms deadline, but inside r2's window (r2 is posted at
		// ~1ms, so its own deadline lands near 2ms).
		p.Sleep(1500 * sim.Microsecond)
		h0.PostNetSend(p, s, h1)
		s.Done.Wait(p)
	})
	eng.Spawn("recver", func(p *sim.Proc) {
		h1.PostNetRecv(p, r1)
		r1.Done.Wait(p) // fails at 1ms
		h1.PostNetRecv(p, r2)
		r2.Done.Wait(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var ne *NetError
	if !errors.As(r1.Err, &ne) || ne.Op != "recv" {
		t.Fatalf("r1 err = %v, want timeout *NetError", r1.Err)
	}
	if r2.Err != nil {
		t.Fatalf("r2 err = %v, want success", r2.Err)
	}
	db, _ := e1.Space.Bytes(dst2, 512)
	for i := range db {
		if db[i] != byte(i^0x5A) {
			t.Fatalf("late message landed wrong at %d", i)
		}
	}
}

// TestRDMARerouteToStaging: a flapped RDMA path degrades a device-to-device
// internode transfer to the pinned staging path — staged counters tick, the
// direct counter does not, and the reroute is counted.
func TestRDMARerouteToStaging(t *testing.T) {
	eng, h0, h1, e0, e1 := twoNodeRig(t, topo.Titan(2), impaccCfg())
	flap := &stubFaults{rdmaDown: true}
	h0.SetFaults(flap)
	h1.SetFaults(flap)
	src, _ := e0.Ctx.MemAlloc(1 << 20)
	dst, _ := e1.Ctx.MemAlloc(1 << 20)
	s := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 7, Addr: src, Bytes: 1 << 20, Ep: e0, Done: eng.NewEvent("s")}
	rc := &Cmd{Src: 0, Dst: 1, Tag: 7, Addr: dst, Bytes: 1 << 20, Ep: e1, Done: eng.NewEvent("r")}
	eng.Spawn("sender", func(p *sim.Proc) {
		h0.PostNetSend(p, s, h1)
		s.Done.Wait(p)
	})
	eng.Spawn("recver", func(p *sim.Proc) {
		h1.PostNetRecv(p, rc)
		rc.Done.Wait(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Err != nil || rc.Err != nil {
		t.Fatalf("errs: send=%v recv=%v", s.Err, rc.Err)
	}
	st := h0.Stats()
	if st.RDMADirect != 0 {
		t.Fatalf("rdmaDirect = %d with RDMA flapped, want 0", st.RDMADirect)
	}
	if st.Staged == 0 || h1.Stats().Staged == 0 {
		t.Fatalf("staged = %d/%d, want both sides staged", st.Staged, h1.Stats().Staged)
	}
	if got := counterVal(eng, h0, NetReroutedTotal); got != 1 {
		t.Fatalf("rerouted counter = %d, want 1", got)
	}
}
