package prof

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"impacc/internal/sim"
)

// The trace stream is the bounded-memory export of a causal trace: one JSON
// object per line, written incrementally while the run executes (core's
// streaming tracer) or in one pass from a buffered tracer. The line order is
// the canonical stream order (at, node, seq) — records merged across node
// lanes by stamp — so the bytes are independent of how the producer batched
// its flushes, and a streamed file compares byte-for-byte against a
// buffered-then-exported one.
//
// Layout:
//
//	{"t":"stream","v":"impacc-trace-stream-v1"}   header, first line
//	{"t":"span","node":N,"seq":S,"at":T,"span":{...}}
//	{"t":"edge","node":N,"seq":S,"at":T,"edge":{...}}
//	{"t":"claim","node":N,"seq":S,"at":T,"cmd":C,"sid":I}
//	{"t":"end","makespan_ns":M}                   trailer, last line
//
// Claims bind a posted command's trace ID to the span that observed it; the
// reader applies them first-wins in stream order, which matches the
// producer's first-claim-wins rule because all claims of one command land on
// one node lane, where stream order is claim order.

// StreamVersion tags the stream header; readers reject other versions.
const StreamVersion = "impacc-trace-stream-v1"

// StreamRec is one record line of the trace stream.
type StreamRec struct {
	T    string `json:"t"` // span | edge | claim
	Node int    `json:"node"`
	Seq  uint64 `json:"seq"`
	At   int64  `json:"at"`
	Span *Span  `json:"span,omitempty"` // t == "span"
	Edge *Edge  `json:"edge,omitempty"` // t == "edge"
	Cmd  uint64 `json:"cmd,omitempty"`  // t == "claim": command trace ID
	Sid  uint64 `json:"sid,omitempty"`  // t == "claim": claiming span ID
}

// streamLine is the union shape used to parse any line of the stream.
type streamLine struct {
	StreamRec
	V        string `json:"v,omitempty"`           // t == "stream"
	Makespan int64  `json:"makespan_ns,omitempty"` // t == "end"
}

// ReadStream parses a trace stream and reassembles the same Trace the
// producing tracer would have returned from its buffered Data view: spans
// sorted by ID, edges in lane-major record order with message endpoints
// resolved through first-wins claims, unresolvable edges dropped, and the
// makespan clamped up to the latest record stamp.
func ReadStream(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	var (
		recs     []StreamRec
		makespan int64
		sawHdr   bool
		sawEnd   bool
		lineNo   int
	)
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var l streamLine
		if err := json.Unmarshal(line, &l); err != nil {
			return Trace{}, fmt.Errorf("prof: trace stream line %d: %w", lineNo, err)
		}
		switch l.T {
		case "stream":
			if l.V != StreamVersion {
				return Trace{}, fmt.Errorf("prof: trace stream version %q (want %q)", l.V, StreamVersion)
			}
			sawHdr = true
		case "end":
			makespan = l.Makespan
			sawEnd = true
		case "span", "edge", "claim":
			if !sawHdr {
				return Trace{}, fmt.Errorf("prof: trace stream line %d: record before header", lineNo)
			}
			recs = append(recs, l.StreamRec)
		default:
			return Trace{}, fmt.Errorf("prof: trace stream line %d: unknown record type %q", lineNo, l.T)
		}
	}
	if err := sc.Err(); err != nil {
		return Trace{}, fmt.Errorf("prof: trace stream: %w", err)
	}
	if !sawHdr {
		return Trace{}, fmt.Errorf("prof: trace stream: missing header")
	}
	if !sawEnd {
		return Trace{}, fmt.Errorf("prof: trace stream: truncated (no end record)")
	}
	return assembleStream(recs, sim.Time(makespan)), nil
}

// assembleStream mirrors the buffered tracer's Data: same span order, same
// edge order, same claim resolution.
func assembleStream(recs []StreamRec, makespan sim.Time) Trace {
	var spans []Span
	claims := map[uint64]uint64{}
	for i := range recs {
		switch recs[i].T {
		case "span":
			if recs[i].Span != nil {
				spans = append(spans, *recs[i].Span)
			}
		case "claim":
			if _, ok := claims[recs[i].Cmd]; !ok {
				claims[recs[i].Cmd] = recs[i].Sid
			}
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].ID < spans[j].ID })
	ids := make(map[uint64]bool, len(spans))
	for i := range spans {
		ids[spans[i].ID] = true
	}
	resolve := func(id uint64) uint64 {
		if sp, ok := claims[id]; ok && ids[sp] {
			return sp
		}
		return id
	}
	// Edges come back in lane-major record order — the buffered Data order —
	// by sorting on (node, seq); the stream itself is stamp-major.
	var raw []StreamRec
	for i := range recs {
		if recs[i].T == "edge" && recs[i].Edge != nil {
			raw = append(raw, recs[i])
		}
	}
	sort.Slice(raw, func(i, j int) bool {
		if raw[i].Node != raw[j].Node {
			return raw[i].Node < raw[j].Node
		}
		return raw[i].Seq < raw[j].Seq
	})
	edges := make([]Edge, 0)
	for i := range raw {
		e := *raw[i].Edge
		if e.Kind == "msg" {
			e.From = resolve(e.From)
			e.To = resolve(e.To)
		}
		if !ids[e.From] || !ids[e.To] {
			continue
		}
		edges = append(edges, e)
	}
	for i := range spans {
		if spans[i].End > makespan {
			makespan = spans[i].End
		}
	}
	return Trace{Makespan: makespan, Spans: spans, Edges: edges}
}
