package prof_test

// End-to-end acceptance of the causal-tracing pipeline: for every app and
// runtime mode in the matrix, the critical-path attribution must account
// for every nanosecond of the makespan exactly, message edges must resolve
// to real span pairs, and a repeated run must produce byte-identical
// profile JSON.

import (
	"bytes"
	"testing"

	"impacc/internal/apps"
	"impacc/internal/core"
	"impacc/internal/prof"
	"impacc/internal/sim"
	"impacc/internal/topo"
)

type matrixCase struct {
	name     string
	mode     core.Mode
	prog     func() core.Program
	wantMsgs bool // app communicates, so the trace must carry msg edges
}

func matrix() []matrixCase {
	return []matrixCase{
		{"jacobi-impacc-unified", core.IMPACC,
			func() core.Program {
				return apps.Jacobi(apps.JacobiConfig{N: 256, Iters: 4, Style: apps.StyleUnified})
			}, true},
		{"jacobi-impacc-sync", core.IMPACC,
			func() core.Program {
				return apps.Jacobi(apps.JacobiConfig{N: 256, Iters: 4, Style: apps.StyleSync})
			}, true},
		{"jacobi-legacy-async", core.Legacy,
			func() core.Program {
				return apps.Jacobi(apps.JacobiConfig{N: 256, Iters: 4, Style: apps.StyleAsync})
			}, true},
		{"dgemm-impacc", core.IMPACC,
			func() core.Program {
				return apps.DGEMM(apps.DGEMMConfig{N: 256, Style: apps.StyleUnified})
			}, true},
		{"ep-impacc", core.IMPACC,
			func() core.Program {
				return apps.EP(apps.EPConfig{Class: apps.EPClassS, Style: apps.StyleUnified, SampleShift: 12})
			}, true},
		{"lulesh-impacc", core.IMPACC,
			func() core.Program {
				return apps.LULESH(apps.LULESHConfig{Edge: 4, Steps: 2})
			}, true},
	}
}

// tracedRun executes one matrix case and returns the report plus the
// profile's JSON bytes.
func tracedRun(t *testing.T, mc matrixCase) (*core.Report, []byte) {
	t.Helper()
	cfg := core.Config{
		System: topo.Beacon(2), Mode: mc.mode, Seed: 2016, JitterPct: 1,
		Trace: core.NewTracer(),
	}
	rep, err := core.Run(cfg, mc.prog())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Prof == nil {
		t.Fatal("traced run produced no profile")
	}
	var buf bytes.Buffer
	if err := rep.Prof.WriteJSON(&buf); err != nil {
		t.Fatalf("profile JSON: %v", err)
	}
	return rep, buf.Bytes()
}

func TestProfileMatrix(t *testing.T) {
	for _, mc := range matrix() {
		t.Run(mc.name, func(t *testing.T) {
			rep, js := tracedRun(t, mc)
			p := rep.Prof

			// Exactness: the per-kind critical-path attribution covers the
			// makespan with no gap and no overlap.
			var sum int64
			for _, v := range p.CritPath.ByKindNs {
				sum += v
			}
			if sum != p.MakespanNs {
				t.Errorf("critical path sums to %d ns, makespan %d ns (%v)",
					sum, p.MakespanNs, p.CritPath.ByKindNs)
			}
			if p.MakespanNs != int64(rep.Elapsed) {
				t.Errorf("profile makespan %d != report elapsed %d", p.MakespanNs, int64(rep.Elapsed))
			}
			if p.Spans == 0 {
				t.Error("no spans collected")
			}
			if mc.wantMsgs && p.MsgEdges == 0 {
				t.Error("communicating app produced no message edges")
			}
			if len(p.Ranks) != rep.NTasks {
				t.Errorf("%d rank breakdowns for %d tasks", len(p.Ranks), rep.NTasks)
			}
			// Host-lane kinds partition the makespan per rank.
			for _, rb := range p.Ranks {
				var hostSum int64
				for _, v := range rb.HostNs {
					hostSum += v
				}
				if hostSum != p.MakespanNs {
					t.Errorf("rank %d host kinds sum to %d, want %d (%v)",
						rb.Rank, hostSum, p.MakespanNs, rb.HostNs)
				}
			}

			// Determinism: an identical run yields byte-identical profiles.
			_, js2 := tracedRun(t, mc)
			if !bytes.Equal(js, js2) {
				t.Error("repeated run produced different profile JSON")
			}

			// The text report renders without error.
			var txt bytes.Buffer
			if err := p.WriteText(&txt); err != nil || txt.Len() == 0 {
				t.Errorf("text report: err=%v len=%d", err, txt.Len())
			}
		})
	}
}

// TestFlowEdgesResolve checks that every exported msg edge connects two
// recorded spans on the expected ranks, via the tracer's Data view.
func TestFlowEdgesResolve(t *testing.T) {
	tr := core.NewTracer()
	cfg := core.Config{
		System: topo.Beacon(2), Mode: core.IMPACC, Seed: 2016, JitterPct: 1, Trace: tr,
	}
	rep, err := core.Run(cfg, apps.Jacobi(apps.JacobiConfig{N: 256, Iters: 3, Style: apps.StyleUnified}))
	if err != nil {
		t.Fatal(err)
	}
	data := tr.Data(sim.Time(rep.Elapsed))
	byID := map[uint64]*prof.Span{}
	for i := range data.Spans {
		byID[data.Spans[i].ID] = &data.Spans[i]
	}
	msgs := 0
	for _, e := range data.Edges {
		if e.Kind != "msg" {
			continue
		}
		msgs++
		from, to := byID[e.From], byID[e.To]
		if from == nil || to == nil {
			t.Fatalf("msg edge %+v has unresolved endpoint", e)
		}
		if from.Rank == to.Rank {
			t.Errorf("msg edge connects spans of the same rank %d: %d -> %d", from.Rank, e.From, e.To)
		}
		if e.Post > e.At {
			t.Errorf("msg edge posted after match: %+v", e)
		}
	}
	if msgs == 0 {
		t.Fatal("no msg edges in jacobi trace")
	}
	// Every neighbor exchange of every iteration produced an edge:
	// 8 ranks in a chain = 7 neighbor pairs, 2 messages per pair per iter.
	wantMin := 7 * 2 * 3
	if msgs < wantMin {
		t.Errorf("got %d msg edges, want at least %d", msgs, wantMin)
	}
}
