package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"impacc/internal/sim"
)

// Aggregate folds the profiles of many runs (a benchmark sweep) into one
// summary. Add is commutative and associative, so concurrent workers
// produce byte-identical snapshots regardless of completion order.
type Aggregate struct {
	mu         sync.Mutex
	runs       int
	makespanNs int64 // summed across runs
	critNs     map[string]int64
	sites      map[[2]string]*Site
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{critNs: map[string]int64{}, sites: map[[2]string]*Site{}}
}

// Add folds one run's profile in. Safe for concurrent use.
func (a *Aggregate) Add(p *Profile) {
	if p == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.runs++
	a.makespanNs += p.MakespanNs
	for k, v := range p.CritPath.ByKindNs {
		a.critNs[k] += v
	}
	for _, s := range p.Sites {
		k := [2]string{s.Kind, s.Name}
		t := a.sites[k]
		if t == nil {
			t = &Site{Kind: s.Kind, Name: s.Name}
			a.sites[k] = t
		}
		t.Count += s.Count
		t.TotalNs += s.TotalNs
		t.Bytes += s.Bytes
		if s.MaxNs > t.MaxNs {
			t.MaxNs = s.MaxNs
		}
		if s.Ranks > t.Ranks {
			t.Ranks = s.Ranks
		}
	}
}

// AggProfile is a deterministic snapshot of an Aggregate.
type AggProfile struct {
	Runs         int              `json:"runs"`
	MakespanNs   int64            `json:"makespan_ns"` // summed over runs
	CritPathNs   map[string]int64 `json:"critical_path_ns"`
	Sites        []Site           `json:"sites"`
	SitesOmitted int              `json:"sites_omitted,omitempty"`
}

// Snapshot materializes the aggregate with at most topN sites.
func (a *Aggregate) Snapshot(topN int) *AggProfile {
	a.mu.Lock()
	defer a.mu.Unlock()
	ap := &AggProfile{Runs: a.runs, MakespanNs: a.makespanNs, CritPathNs: map[string]int64{}}
	for k, v := range a.critNs {
		ap.CritPathNs[k] = v
	}
	all := make([]Site, 0, len(a.sites))
	for _, s := range a.sites {
		cp := *s
		if cp.Count > 0 {
			cp.MeanNs = cp.TotalNs / cp.Count
		}
		all = append(all, cp)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].TotalNs != all[j].TotalNs {
			return all[i].TotalNs > all[j].TotalNs
		}
		if all[i].Kind != all[j].Kind {
			return all[i].Kind < all[j].Kind
		}
		return all[i].Name < all[j].Name
	})
	if topN > 0 && len(all) > topN {
		ap.SitesOmitted = len(all) - topN
		all = all[:topN]
	}
	ap.Sites = all
	return ap
}

// WriteJSON renders the aggregate snapshot as indented JSON.
func (ap *AggProfile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ap)
}

// WriteText renders the aggregate snapshot as a human-readable table.
func (ap *AggProfile) WriteText(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pf("IMPACC aggregate profile: %d runs, %v total virtual time\n",
		ap.Runs, sim.Dur(ap.MakespanNs))
	pf("\nCritical path across all runs:\n")
	for _, k := range sortedKinds(ap.CritPathNs) {
		v := ap.CritPathNs[k]
		pf("  %-8s %12v  %5.1f%%\n", k, sim.Dur(v), pct(v, ap.MakespanNs))
	}
	if len(ap.Sites) > 0 {
		pf("\nTop sites by total time:\n")
		writeSiteTable(pf, ap.Sites, ap.MakespanNs)
		if ap.SitesOmitted > 0 {
			pf("  ... %d more sites omitted\n", ap.SitesOmitted)
		}
	}
	return err
}
