// Package prof analyzes causal execution traces: on top of the span+edge
// DAG the tracer collects (internal/core), it computes the critical path of
// a run and attributes its virtual time by activity kind, builds per-rank
// time breakdowns with load-imbalance statistics, and aggregates an
// mpiP-style top-N table per (kind, name) call site. The package is a leaf:
// it depends only on the simulation clock types, so the core runtime can
// embed its results in run reports.
package prof

import (
	"sort"

	"impacc/internal/sim"
)

// Span is one traced interval of virtual time on an execution lane. Host
// code (compute, blocking MPI, acc waits, synchronous copies) runs on the
// rank's host lane (Stream < 0); kernels, asynchronous copies, and unified
// activity queue MPI operations run on device stream lanes (Stream >= 0).
type Span struct {
	ID     uint64   `json:"id"`
	Rank   int      `json:"rank"`
	Node   int      `json:"node"`
	Stream int      `json:"stream"` // -1 = host lane, else device activity queue
	Kind   string   `json:"kind"`   // kernel | copy | mpi | compute | accwait | launch
	Name   string   `json:"name"`
	Start  sim.Time `json:"start"` // virtual nanoseconds
	End    sim.Time `json:"end"`
	Bytes  int64    `json:"bytes,omitempty"` // payload size for copy/mpi spans
	Peer   int      `json:"peer"`            // peer rank of mpi spans; -1 = none
}

// Edge is one dependency between spans.
//
//   - "msg": an MPI send→recv match. From/To are the spans that performed
//     (or completed) the send and the receive; Post is when the sender
//     initiated the operation, At when the pair matched.
//   - "stream": in-order completion between consecutive operations on one
//     device activity queue.
//   - "event": a cross-stream wait (cuStreamWaitEvent), from the awaited
//     stream's tail operation to the waiting operation.
//
// Same-rank program order is implicit: spans on one lane of one rank are
// ordered by their intervals and never overlap causally.
type Edge struct {
	Kind  string   `json:"kind"` // msg | stream | event
	From  uint64   `json:"from"`
	To    uint64   `json:"to"`
	At    sim.Time `json:"at"`
	Post  sim.Time `json:"post,omitempty"`
	Bytes int64    `json:"bytes,omitempty"`
}

// Trace is a complete causal trace of one run.
type Trace struct {
	Makespan sim.Time `json:"makespan_ns"`
	Spans    []Span   `json:"spans"`
	Edges    []Edge   `json:"edges"`
}

// DefaultTopSites bounds the aggregate call-site table of a profile.
const DefaultTopSites = 20

// CritPath is the critical-path attribution of a run: walking backward from
// the task that finished last, every nanosecond of the makespan is assigned
// to exactly one kind, following message edges to the sender whenever a
// blocking MPI interval was caused by a late-posted send (load imbalance)
// rather than by transfer cost. The per-kind times sum to MakespanNs.
type CritPath struct {
	ByKindNs map[string]int64 `json:"by_kind_ns"`
	Steps    int              `json:"steps"`
	Hops     int              `json:"hops"` // rank switches along message edges
	EndRank  int              `json:"end_rank"`
}

// RankBreakdown is one rank's flattened time accounting. Host-lane kinds
// partition the makespan ("other" covers idle gaps); device-lane kinds sum
// the rank's stream activity (overlap between streams counted once).
type RankBreakdown struct {
	Rank     int              `json:"rank"`
	Node     int              `json:"node"`
	HostNs   map[string]int64 `json:"host_ns"`
	DeviceNs map[string]int64 `json:"device_ns,omitempty"`
}

// Imbalance is the cross-rank distribution of one kind's per-rank time
// (host + device lanes combined), the mpiP-style max/mean statistics.
type Imbalance struct {
	Kind        string  `json:"kind"`
	MaxNs       int64   `json:"max_ns"`
	MinNs       int64   `json:"min_ns"`
	MeanNs      int64   `json:"mean_ns"`
	StddevNs    int64   `json:"stddev_ns"`
	MaxOverMean float64 `json:"max_over_mean"`
}

// Site is one (kind, name) aggregate call site, mpiP's top-N table unit.
type Site struct {
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	TotalNs int64  `json:"total_ns"`
	MaxNs   int64  `json:"max_ns"`
	MeanNs  int64  `json:"mean_ns"`
	Bytes   int64  `json:"bytes,omitempty"`
	Ranks   int    `json:"ranks"`
}

// Profile is the analyzed form of a trace.
type Profile struct {
	MakespanNs   int64           `json:"makespan_ns"`
	Spans        int             `json:"spans"`
	MsgEdges     int             `json:"msg_edges"`
	StreamEdges  int             `json:"stream_edges"`
	CritPath     CritPath        `json:"critical_path"`
	Ranks        []RankBreakdown `json:"ranks"`
	Imbalance    []Imbalance     `json:"imbalance"`
	Sites        []Site          `json:"sites"`
	SitesOmitted int             `json:"sites_omitted,omitempty"`
}

// segment is one flattened, non-overlapping piece of a lane timeline.
// Overlapping spans (a collective enclosing its combine computes, a unified
// queue MPI operation spanning kernels) resolve innermost-wins: at every
// instant the covering span with the latest start (then highest ID) owns it.
type segment struct {
	start, end sim.Time
	span       *Span
}

// rankLanes is one rank's flattened host and device timelines.
type rankLanes struct {
	node     int
	host     []segment
	dev      []segment
	lastSeen sim.Time // max span end on any lane
}

// Analyze computes the full profile of a trace. The result is a pure
// function of the trace — deterministic, no clocks, no maps iterated
// unsorted.
func Analyze(t Trace, topSites int) *Profile {
	p := &Profile{
		MakespanNs: int64(t.Makespan),
		Spans:      len(t.Spans),
		CritPath:   CritPath{ByKindNs: map[string]int64{}, EndRank: -1},
	}
	byID := make(map[uint64]*Span, len(t.Spans))
	for i := range t.Spans {
		byID[t.Spans[i].ID] = &t.Spans[i]
	}
	// Incoming message edges per destination span.
	msgIn := map[uint64][]Edge{}
	for _, e := range t.Edges {
		if e.Kind == "msg" {
			p.MsgEdges++
			msgIn[e.To] = append(msgIn[e.To], e)
		} else {
			p.StreamEdges++
		}
	}
	lanes := flattenRanks(t.Spans)
	ranks := make([]int, 0, len(lanes))
	for r := range lanes {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)

	p.criticalPath(lanes, ranks, byID, msgIn, t.Makespan)
	p.breakdowns(lanes, ranks, t.Makespan)
	p.sites(t.Spans, topSites)
	return p
}

// flattenRanks partitions every rank's host and device lanes into
// non-overlapping segments.
func flattenRanks(spans []Span) map[int]*rankLanes {
	type laneSpans struct{ host, dev []*Span }
	perRank := map[int]*laneSpans{}
	nodes := map[int]int{}
	last := map[int]sim.Time{}
	for i := range spans {
		s := &spans[i]
		ls := perRank[s.Rank]
		if ls == nil {
			ls = &laneSpans{}
			perRank[s.Rank] = ls
		}
		if s.Stream < 0 {
			ls.host = append(ls.host, s)
		} else {
			ls.dev = append(ls.dev, s)
		}
		nodes[s.Rank] = s.Node
		if s.End > last[s.Rank] {
			last[s.Rank] = s.End
		}
	}
	out := make(map[int]*rankLanes, len(perRank))
	for r, ls := range perRank {
		out[r] = &rankLanes{
			node:     nodes[r],
			host:     flatten(ls.host),
			dev:      flatten(ls.dev),
			lastSeen: last[r],
		}
	}
	return out
}

// flatten sweeps one lane's spans into sorted non-overlapping segments,
// innermost span (latest start, then highest ID) winning each instant.
func flatten(spans []*Span) []segment {
	live := spans[:0:0]
	for _, s := range spans {
		if s.End > s.Start {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return nil
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].Start != live[j].Start {
			return live[i].Start < live[j].Start
		}
		return live[i].ID < live[j].ID
	})
	bounds := make([]sim.Time, 0, 2*len(live))
	for _, s := range live {
		bounds = append(bounds, s.Start, s.End)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	var segs []segment
	var active []*Span
	next := 0
	for bi := 0; bi+1 < len(bounds); bi++ {
		lo, hi := bounds[bi], bounds[bi+1]
		if hi == lo {
			continue
		}
		for next < len(live) && live[next].Start <= lo {
			active = append(active, live[next])
			next++
		}
		var win *Span
		kept := active[:0]
		for _, s := range active {
			if s.End <= lo {
				continue // expired
			}
			kept = append(kept, s)
			if win == nil || s.Start > win.Start || (s.Start == win.Start && s.ID > win.ID) {
				win = s
			}
		}
		active = kept
		if win == nil {
			continue // gap between spans
		}
		if n := len(segs); n > 0 && segs[n-1].span == win && segs[n-1].end == lo {
			segs[n-1].end = hi
		} else {
			segs = append(segs, segment{start: lo, end: hi, span: win})
		}
	}
	return segs
}

// covering returns the segment with start < at <= end, or nil; segments are
// sorted and disjoint.
func covering(segs []segment, at sim.Time) *segment {
	i := sort.Search(len(segs), func(i int) bool { return segs[i].start >= at })
	if i == 0 {
		return nil
	}
	if s := &segs[i-1]; s.end >= at {
		return s
	}
	return nil
}

// gapBelow returns the largest segment end <= at (0 when none): the resume
// point after attributing an idle gap.
func gapBelow(segs []segment, at sim.Time) sim.Time {
	i := sort.Search(len(segs), func(i int) bool { return segs[i].start >= at })
	for i--; i >= 0; i-- {
		if segs[i].end <= at {
			return segs[i].end
		}
	}
	return 0
}

// criticalPath walks the timeline backward from the finish of the run,
// attributing every interval of [0, makespan] to exactly one kind. Blocking
// MPI intervals follow their binding message edge: the portion after the
// sender posted is transfer cost ("mpi"); if the send was posted mid-wait,
// the walk jumps to the sender's timeline at the posting instant — the
// classic wait = imbalance + transfer decomposition. Host accwait intervals
// are projected onto the rank's device lanes, splitting them into kernel,
// copy, and queued-MPI time plus residual synchronization overhead.
func (p *Profile) criticalPath(lanes map[int]*rankLanes, ranks []int, byID map[uint64]*Span, msgIn map[uint64][]Edge, makespan sim.Time) {
	byKind := p.CritPath.ByKindNs
	if len(ranks) == 0 || makespan <= 0 {
		if makespan > 0 {
			byKind["other"] = int64(makespan)
		}
		return
	}
	rank := ranks[0]
	for _, r := range ranks {
		if lanes[r].lastSeen > lanes[rank].lastSeen {
			rank = r
		}
	}
	p.CritPath.EndRank = rank
	T := makespan
	maxSteps := 4*len(byID) + 64
	for T > 0 {
		if p.CritPath.Steps >= maxSteps {
			byKind["other"] += int64(T) // runaway guard; keeps the sum exact
			break
		}
		p.CritPath.Steps++
		ln := lanes[rank]
		seg := covering(ln.host, T)
		if seg == nil {
			lo := gapBelow(ln.host, T)
			byKind["other"] += int64(T - lo)
			T = lo
			continue
		}
		switch seg.span.Kind {
		case "mpi":
			if e, sender, ok := bindingEdge(msgIn[seg.span.ID], byID, seg.start, T); ok {
				byKind["mpi"] += int64(T - e.Post)
				T = e.Post
				rank = sender
				p.CritPath.Hops++
				continue
			}
			byKind["mpi"] += int64(T - seg.start)
			T = seg.start
		case "accwait":
			project(ln.dev, seg.start, T, byKind)
			T = seg.start
		default:
			byKind[seg.span.Kind] += int64(T - seg.start)
			T = seg.start
		}
	}
}

// bindingEdge selects the message edge that bounds a blocking MPI interval:
// the last-arriving match (max At, then max Post, then min From), accepted
// only when the sender posted strictly inside (lo, hi) — otherwise the
// interval is pure transfer/handler cost and the walk stays on this rank.
func bindingEdge(edges []Edge, byID map[uint64]*Span, lo, hi sim.Time) (Edge, int, bool) {
	var best Edge
	found := false
	for _, e := range edges {
		if _, ok := byID[e.From]; !ok {
			continue
		}
		if !found || e.At > best.At ||
			(e.At == best.At && (e.Post > best.Post || (e.Post == best.Post && e.From < best.From))) {
			best, found = e, true
		}
	}
	if !found || best.Post <= lo || best.Post >= hi {
		return Edge{}, 0, false
	}
	return best, byID[best.From].Rank, true
}

// project attributes the host interval (lo, hi] of an accwait span using
// the rank's device-lane segments: covered sub-intervals take the device
// activity's kind, the residue stays "accwait".
func project(dev []segment, lo, hi sim.Time, byKind map[string]int64) {
	covered := int64(0)
	i := sort.Search(len(dev), func(i int) bool { return dev[i].end > lo })
	for ; i < len(dev) && dev[i].start < hi; i++ {
		s, e := dev[i].start, dev[i].end
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if e > s {
			byKind[dev[i].span.Kind] += int64(e - s)
			covered += int64(e - s)
		}
	}
	byKind["accwait"] += int64(hi-lo) - covered
}

// breakdowns fills the per-rank tables and the cross-rank imbalance stats.
func (p *Profile) breakdowns(lanes map[int]*rankLanes, ranks []int, makespan sim.Time) {
	combined := map[string][]int64{} // kind -> per-rank host+dev ns
	addVal := func(kind string, idx int, v int64) {
		vs := combined[kind]
		if vs == nil {
			vs = make([]int64, len(ranks))
			combined[kind] = vs
		}
		vs[idx] += v
	}
	for i, r := range ranks {
		ln := lanes[r]
		rb := RankBreakdown{Rank: r, Node: ln.node, HostNs: map[string]int64{}}
		var busy int64
		for _, s := range ln.host {
			d := int64(s.end - s.start)
			rb.HostNs[s.span.Kind] += d
			busy += d
		}
		if gap := int64(makespan) - busy; gap > 0 {
			rb.HostNs["other"] = gap
		}
		if len(ln.dev) > 0 {
			rb.DeviceNs = map[string]int64{}
			for _, s := range ln.dev {
				rb.DeviceNs[s.span.Kind] += int64(s.end - s.start)
			}
		}
		for k, v := range rb.HostNs {
			addVal(k, i, v)
		}
		for k, v := range rb.DeviceNs {
			addVal(k, i, v)
		}
		p.Ranks = append(p.Ranks, rb)
	}
	kinds := make([]string, 0, len(combined))
	for k := range combined {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		p.Imbalance = append(p.Imbalance, imbalanceOf(k, combined[k]))
	}
}

// imbalanceOf computes distribution statistics over per-rank values.
func imbalanceOf(kind string, vs []int64) Imbalance {
	im := Imbalance{Kind: kind, MinNs: vs[0]}
	var sum int64
	for _, v := range vs {
		sum += v
		if v > im.MaxNs {
			im.MaxNs = v
		}
		if v < im.MinNs {
			im.MinNs = v
		}
	}
	im.MeanNs = sum / int64(len(vs))
	var varSum float64
	for _, v := range vs {
		d := float64(v - im.MeanNs)
		varSum += d * d
	}
	im.StddevNs = int64(isqrt(varSum / float64(len(vs))))
	if im.MeanNs > 0 {
		im.MaxOverMean = float64(im.MaxNs) / float64(im.MeanNs)
	}
	return im
}

// isqrt is a float sqrt via Newton iterations — enough precision for a
// nanosecond stddev without importing math.
func isqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 64; i++ {
		ng := (g + x/g) / 2
		if ng == g {
			break
		}
		g = ng
	}
	return g
}

// sites builds the mpiP-style top-N aggregate table per (kind, name).
func (p *Profile) sites(spans []Span, topN int) {
	type acc struct {
		site  Site
		ranks map[int]struct{}
	}
	byKey := map[[2]string]*acc{}
	for i := range spans {
		s := &spans[i]
		k := [2]string{s.Kind, s.Name}
		a := byKey[k]
		if a == nil {
			a = &acc{site: Site{Kind: s.Kind, Name: s.Name}, ranks: map[int]struct{}{}}
			byKey[k] = a
		}
		d := int64(s.End - s.Start)
		a.site.Count++
		a.site.TotalNs += d
		if d > a.site.MaxNs {
			a.site.MaxNs = d
		}
		a.site.Bytes += s.Bytes
		a.ranks[s.Rank] = struct{}{}
	}
	all := make([]Site, 0, len(byKey))
	for _, a := range byKey {
		a.site.Ranks = len(a.ranks)
		if a.site.Count > 0 {
			a.site.MeanNs = a.site.TotalNs / a.site.Count
		}
		all = append(all, a.site)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].TotalNs != all[j].TotalNs {
			return all[i].TotalNs > all[j].TotalNs
		}
		if all[i].Kind != all[j].Kind {
			return all[i].Kind < all[j].Kind
		}
		return all[i].Name < all[j].Name
	})
	if topN > 0 && len(all) > topN {
		p.SitesOmitted = len(all) - topN
		all = all[:topN]
	}
	p.Sites = all
}
