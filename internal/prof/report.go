package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"impacc/internal/sim"
)

// WriteJSON renders the profile as an indented JSON document. Map keys are
// emitted sorted by encoding/json, so the bytes are deterministic.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// SortedKinds returns the attribution kinds ordered by descending time,
// name ascending on ties.
func (c *CritPath) SortedKinds() []string { return sortedKinds(c.ByKindNs) }

// sortedKinds returns map keys ordered by descending value, name ascending
// on ties — the display order of every by-kind table.
func sortedKinds(m map[string]int64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool {
		if m[ks[i]] != m[ks[j]] {
			return m[ks[i]] > m[ks[j]]
		}
		return ks[i] < ks[j]
	})
	return ks
}

func pct(part, whole int64) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// WriteText renders the mpiP-style human-readable report.
func (p *Profile) WriteText(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pf("IMPACC profile report\n")
	pf("  makespan %v   spans %d   msg edges %d   stream edges %d\n\n",
		sim.Dur(p.MakespanNs), p.Spans, p.MsgEdges, p.StreamEdges)

	pf("Critical path (ends on rank %d, %d steps, %d rank hops):\n",
		p.CritPath.EndRank, p.CritPath.Steps, p.CritPath.Hops)
	for _, k := range sortedKinds(p.CritPath.ByKindNs) {
		v := p.CritPath.ByKindNs[k]
		pf("  %-8s %12v  %5.1f%%\n", k, sim.Dur(v), pct(v, p.MakespanNs))
	}
	pf("\nPer-rank host time:\n")
	pf("  %-5s %-5s", "rank", "node")
	kindSet := map[string]struct{}{}
	for _, rb := range p.Ranks {
		for k := range rb.HostNs {
			kindSet[k] = struct{}{}
		}
	}
	kinds := make([]string, 0, len(kindSet))
	for k := range kindSet {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		pf(" %12s", k)
	}
	pf("\n")
	for _, rb := range p.Ranks {
		pf("  %-5d %-5d", rb.Rank, rb.Node)
		for _, k := range kinds {
			pf(" %12v", sim.Dur(rb.HostNs[k]))
		}
		pf("\n")
	}
	if len(p.Imbalance) > 0 {
		pf("\nLoad imbalance (host+device per kind across ranks):\n")
		pf("  %-8s %12s %12s %12s %12s %8s\n", "kind", "max", "min", "mean", "stddev", "max/mean")
		for _, im := range p.Imbalance {
			pf("  %-8s %12v %12v %12v %12v %8.2f\n", im.Kind,
				sim.Dur(im.MaxNs), sim.Dur(im.MinNs), sim.Dur(im.MeanNs),
				sim.Dur(im.StddevNs), im.MaxOverMean)
		}
	}
	if len(p.Sites) > 0 {
		pf("\nTop sites by total time:\n")
		writeSiteTable(pf, p.Sites, p.MakespanNs)
		if p.SitesOmitted > 0 {
			pf("  ... %d more sites omitted\n", p.SitesOmitted)
		}
	}
	return err
}

// writeSiteTable renders the shared (kind,name) aggregate table.
func writeSiteTable(pf func(string, ...any), sites []Site, whole int64) {
	pf("  %-8s %-14s %8s %12s %12s %12s %6s %14s\n",
		"kind", "name", "count", "total", "mean", "max", "ranks", "bytes")
	for _, s := range sites {
		pf("  %-8s %-14s %8d %12v %12v %12v %6d %14d\n",
			s.Kind, s.Name, s.Count, sim.Dur(s.TotalNs), sim.Dur(s.MeanNs),
			sim.Dur(s.MaxNs), s.Ranks, s.Bytes)
	}
}
