package prof

import (
	"bytes"
	"reflect"
	"testing"

	"impacc/internal/sim"
)

// span is a test shorthand.
func span(id uint64, rank, stream int, kind, name string, start, end int64) Span {
	return Span{ID: id, Rank: rank, Stream: stream, Kind: kind, Name: name,
		Start: sim.Time(start), End: sim.Time(end), Peer: -1}
}

func kindSum(m map[string]int64) int64 {
	var s int64
	for _, v := range m {
		s += v
	}
	return s
}

func TestFlattenInnermostWins(t *testing.T) {
	outer := span(1, 0, -1, "mpi", "bcast", 0, 100)
	inner := span(2, 0, -1, "compute", "combine", 20, 50)
	segs := flatten([]*Span{&outer, &inner})
	want := []struct {
		lo, hi int64
		id     uint64
	}{{0, 20, 1}, {20, 50, 2}, {50, 100, 1}}
	if len(segs) != len(want) {
		t.Fatalf("got %d segments, want %d: %+v", len(segs), len(want), segs)
	}
	for i, w := range want {
		if int64(segs[i].start) != w.lo || int64(segs[i].end) != w.hi || segs[i].span.ID != w.id {
			t.Errorf("segment %d = (%d,%d,id%d), want (%d,%d,id%d)",
				i, segs[i].start, segs[i].end, segs[i].span.ID, w.lo, w.hi, w.id)
		}
	}
}

func TestCriticalPathFollowsMessageEdge(t *testing.T) {
	tr := Trace{
		Makespan: 150,
		Spans: []Span{
			span(1, 0, -1, "compute", "host", 0, 100),
			span(2, 0, -1, "mpi", "send", 100, 120),
			span(3, 1, -1, "compute", "host", 0, 40),
			span(4, 1, -1, "mpi", "recv", 40, 140),
		},
		Edges: []Edge{{Kind: "msg", From: 2, To: 4, Post: 100, At: 130, Bytes: 1 << 20}},
	}
	p := Analyze(tr, DefaultTopSites)
	if got := kindSum(p.CritPath.ByKindNs); got != p.MakespanNs {
		t.Fatalf("critical path sums to %d, want makespan %d (%v)", got, p.MakespanNs, p.CritPath.ByKindNs)
	}
	if p.CritPath.EndRank != 1 || p.CritPath.Hops != 1 {
		t.Errorf("end rank %d hops %d, want 1/1", p.CritPath.EndRank, p.CritPath.Hops)
	}
	// Walk: 10ns trailing idle on rank 1, 40ns transfer (wait after the send
	// posted), then rank 0's 100ns compute that caused the late post.
	want := map[string]int64{"other": 10, "mpi": 40, "compute": 100}
	if !reflect.DeepEqual(p.CritPath.ByKindNs, want) {
		t.Errorf("attribution %v, want %v", p.CritPath.ByKindNs, want)
	}
}

func TestCriticalPathProjectsAccWait(t *testing.T) {
	tr := Trace{
		Makespan: 100,
		Spans: []Span{
			span(1, 0, -1, "accwait", "wait", 0, 100),
			span(2, 0, 0, "kernel", "stencil", 10, 60),
			span(3, 0, 0, "copy", "DtoH", 70, 80),
		},
	}
	p := Analyze(tr, DefaultTopSites)
	want := map[string]int64{"kernel": 50, "copy": 10, "accwait": 40}
	if !reflect.DeepEqual(p.CritPath.ByKindNs, want) {
		t.Errorf("attribution %v, want %v", p.CritPath.ByKindNs, want)
	}
	if got := kindSum(p.CritPath.ByKindNs); got != p.MakespanNs {
		t.Fatalf("critical path sums to %d, want %d", got, p.MakespanNs)
	}
}

func TestBreakdownsAndImbalance(t *testing.T) {
	tr := Trace{
		Makespan: 150,
		Spans: []Span{
			span(1, 0, -1, "compute", "host", 0, 100),
			span(2, 1, -1, "compute", "host", 0, 40),
		},
	}
	p := Analyze(tr, DefaultTopSites)
	if len(p.Ranks) != 2 {
		t.Fatalf("got %d rank breakdowns", len(p.Ranks))
	}
	if p.Ranks[0].HostNs["compute"] != 100 || p.Ranks[0].HostNs["other"] != 50 {
		t.Errorf("rank 0 breakdown %v", p.Ranks[0].HostNs)
	}
	var comp *Imbalance
	for i := range p.Imbalance {
		if p.Imbalance[i].Kind == "compute" {
			comp = &p.Imbalance[i]
		}
	}
	if comp == nil {
		t.Fatal("no compute imbalance row")
	}
	if comp.MaxNs != 100 || comp.MinNs != 40 || comp.MeanNs != 70 {
		t.Errorf("compute imbalance %+v", comp)
	}
	// stddev of {100, 40} about mean 70 is 30.
	if comp.StddevNs != 30 {
		t.Errorf("stddev %d, want 30", comp.StddevNs)
	}
}

func TestSitesTopNTruncation(t *testing.T) {
	tr := Trace{Makespan: 30, Spans: []Span{
		span(1, 0, -1, "compute", "a", 0, 10),
		span(2, 0, -1, "compute", "b", 10, 15),
		span(3, 0, -1, "mpi", "send", 15, 30),
	}}
	p := Analyze(tr, 2)
	if len(p.Sites) != 2 || p.SitesOmitted != 1 {
		t.Fatalf("sites %d omitted %d, want 2/1", len(p.Sites), p.SitesOmitted)
	}
	if p.Sites[0].Kind != "mpi" || p.Sites[0].TotalNs != 15 {
		t.Errorf("top site %+v", p.Sites[0])
	}
}

func TestAggregateOrderIndependent(t *testing.T) {
	mk := func(name string, total int64) *Profile {
		return &Profile{
			MakespanNs: total,
			CritPath:   CritPath{ByKindNs: map[string]int64{"compute": total}},
			Sites:      []Site{{Kind: "compute", Name: name, Count: 1, TotalNs: total, MaxNs: total, Ranks: 1}},
		}
	}
	ps := []*Profile{mk("a", 100), mk("b", 50), mk("c", 200)}
	fwd, rev := NewAggregate(), NewAggregate()
	for _, p := range ps {
		fwd.Add(p)
	}
	for i := len(ps) - 1; i >= 0; i-- {
		rev.Add(ps[i])
	}
	var b1, b2 bytes.Buffer
	if err := fwd.Snapshot(10).WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := rev.Snapshot(10).WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("aggregate snapshots differ by add order:\n%s\n%s", b1.String(), b2.String())
	}
}
