// Package impacc is a Go reproduction of IMPACC — "A Tightly Integrated
// MPI+OpenACC Framework Exploiting Shared Memory Parallelism" (Kim, Lee,
// Vetter; HPDC 2016) — together with every substrate the paper depends on:
// a deterministic discrete-event cluster simulator with NUMA/PCIe/network
// cost models calibrated to the paper's PSG, Beacon, and Titan systems, a
// simulated accelerator runtime (CUDA/OpenCL stand-in), a threaded-MPI
// implementation, an OpenACC runtime, and the IMPACC directive compiler
// front-end.
//
// A program is an SPMD function executed by one Task per accelerator:
//
//	cfg := impacc.Config{System: impacc.PSG(), Mode: impacc.IMPACC, Backed: true}
//	report, err := impacc.Run(cfg, func(t *impacc.Task) {
//	    buf := t.Malloc(8 * 1024)
//	    if t.Rank() == 0 {
//	        t.Send(buf, 1024, impacc.Float64, 1, 0)
//	    } else if t.Rank() == 1 {
//	        t.Recv(buf, 1024, impacc.Float64, 0, 0)
//	    }
//	})
//
// Tasks expose the MPI surface (Send/Recv/Isend/Irecv/collectives), the
// OpenACC surface (DataEnter/DataExit/Update/Kernels/ACCWait), and the
// IMPACC extensions of §3.5: OnDevice() maps a call's buffer through the
// present table (sendbuf/recvbuf(device)), ReadOnly() enables node heap
// aliasing, and Async(q) places the call on a unified activity queue.
//
// Switching Config.Mode between IMPACC and Legacy runs the identical
// program under the paper's runtime or the traditional MPI+OpenACC
// baseline, which is how every evaluation figure is reproduced (see
// internal/bench and EXPERIMENTS.md).
package impacc

import (
	"io"

	"impacc/internal/acc"
	"impacc/internal/core"
	"impacc/internal/device"
	"impacc/internal/mpi"
	"impacc/internal/sim"
	"impacc/internal/topo"
	"impacc/internal/xmem"
)

// Core runtime types.
type (
	// Config describes one run: the target system, runtime mode, device
	// selection, pinning, features, and data backing.
	Config = core.Config
	// Task is one MPI task bound to one accelerator.
	Task = core.Task
	// Program is the SPMD body run by every task.
	Program = core.Program
	// Report summarizes a finished run.
	Report = core.Report
	// Request is a non-blocking communication handle.
	Request = core.Request
	// Opt modifies an MPI call (the IMPACC directive clauses).
	Opt = core.Opt
	// Features toggles individual IMPACC techniques.
	Features = core.Features
	// Placement maps a rank to (node, device).
	Placement = core.Placement
	// Mode selects the runtime implementation.
	Mode = core.Mode
	// PinPolicy controls task-CPU pinning.
	PinPolicy = core.PinPolicy
	// Comm is an MPI communicator (MPI_Comm_split / MPI_Comm_dup).
	Comm = core.Comm
	// Tracer collects per-task execution spans when set on Config.Trace.
	Tracer = core.Tracer
	// Span is one traced virtual-time interval.
	Span = core.Span
	// DataRange describes one allocation's role in a structured data region.
	DataRange = core.DataRange
	// Status reports which message satisfied a receive (MPI_Status).
	Status = core.Status
)

// Memory and hardware types.
type (
	// Addr is an address in the unified node virtual address space.
	Addr = xmem.Addr
	// System describes a cluster.
	System = topo.System
	// DeviceClass identifies an accelerator kind.
	DeviceClass = topo.DeviceClass
	// ClassMask selects accelerator kinds (IMPACC_ACC_DEVICE_TYPE).
	ClassMask = topo.ClassMask
	// KernelSpec describes a compute-region launch.
	KernelSpec = device.KernelSpec
	// Datatype is an MPI basic datatype.
	Datatype = mpi.Datatype
	// ReduceOp is an MPI reduction operator.
	ReduceOp = mpi.Op
	// Dur is a span of virtual time (nanoseconds).
	Dur = sim.Dur
)

// Runtime modes.
const (
	// IMPACC is the paper's integrated runtime.
	IMPACC = core.IMPACC
	// Legacy is the traditional MPI+OpenACC baseline.
	Legacy = core.Legacy
)

// Pinning policies (paper §3.3).
const (
	PinDefault = core.PinDefault
	PinNear    = core.PinNear
	PinFar     = core.PinFar
	PinNone    = core.PinNone
)

// MPI datatypes.
const (
	Byte    = mpi.Byte
	Int32   = mpi.Int32
	Int64   = mpi.Int64
	Float32 = mpi.Float32
	Float64 = mpi.Float64
)

// Reduction operators.
const (
	Sum  = mpi.Sum
	Prod = mpi.Prod
	Max  = mpi.Max
	Min  = mpi.Min
)

// Receive wildcards.
const (
	AnySource = core.AnySource
	AnyTag    = core.AnyTag
)

// Device classes (acc_device_* values, Figure 2).
const (
	NVIDIAGPU = topo.NVIDIAGPU
	XeonPhi   = topo.XeonPhi
	AMDGPU    = topo.AMDGPU
	FPGA      = topo.FPGA
	CPUAccel  = topo.CPUAccel
)

// Kernel cost kinds.
const (
	KindMixed   = device.KindMixed
	KindCompute = device.KindCompute
	KindMemory  = device.KindMemory
)

// Data clause modes for DataEnter/DataExit.
const (
	Copyin  = acc.Copyin
	Create  = acc.Create
	Present = acc.Present
	Copyout = acc.Copyout
	Delete  = acc.Delete
)

// Run executes prog across one task per matching accelerator of
// cfg.System and returns the run report.
func Run(cfg Config, prog Program) (*Report, error) { return core.Run(cfg, prog) }

// OnDevice is the sendbuf(device)/recvbuf(device) clause: the MPI call uses
// the device copy of the named host data (paper §3.5).
func OnDevice() Opt { return core.OnDevice() }

// ReadOnly is the readonly attribute, enabling node heap aliasing (§3.8).
func ReadOnly() Opt { return core.ReadOnly() }

// Async places the MPI call on OpenACC activity queue q — the unified
// activity queue (§3.6). Requires Mode == IMPACC.
func Async(q int) Opt { return core.Async(q) }

// MaskOf builds a device-type selection, e.g. MaskOf(NVIDIAGPU, XeonPhi).
func MaskOf(classes ...DeviceClass) ClassMask { return topo.MaskOf(classes...) }

// ParseClassMask parses an IMPACC_ACC_DEVICE_TYPE string such as
// "nvidia|xeonphi" or "acc_device_cpu" (paper §3.2).
func ParseClassMask(s string) (ClassMask, error) { return topo.ParseClassMask(s) }

// PSG returns the paper's PSG system: one node, 2×Xeon E5-2698v3,
// 8×Kepler GK210 (Table 1).
func PSG() *System { return topo.PSG() }

// Beacon returns n Beacon nodes: 2×Xeon E5-2670, 4×Xeon Phi 5110P each.
func Beacon(n int) *System { return topo.Beacon(n) }

// Titan returns n Titan nodes: Opteron 6274 + Tesla K20X each, Gemini
// interconnect with GPUDirect RDMA.
func Titan(n int) *System { return topo.Titan(n) }

// HeteroDemo returns the heterogeneous three-node cluster of Figure 2.
func HeteroDemo() *System { return topo.HeteroDemo() }

// LoadSystem reads a JSON cluster description (see internal/topo for the
// schema), so programs can target machines beyond the built-in presets.
func LoadSystem(r io.Reader) (*System, error) { return topo.LoadSystem(r) }

// DefaultFeatures returns the canonical feature set for a mode.
func DefaultFeatures(m Mode) Features { return core.DefaultFeatures(m) }

// NewTracer returns an empty execution tracer for Config.Trace.
func NewTracer() *Tracer { return core.NewTracer() }

// BuildMapping computes the automatic task-device mapping (Figure 2)
// without running anything.
func BuildMapping(sys *System, mask ClassMask, maxTasks int) []Placement {
	return core.BuildMapping(sys, mask, maxTasks)
}
