package impacc_test

import (
	"fmt"

	"impacc"
)

// Example runs a two-task exchange with node heap aliasing on a simulated
// PSG node: the read-only transfer completes without copying any data.
func Example() {
	cfg := impacc.Config{
		System:   impacc.PSG(),
		Mode:     impacc.IMPACC,
		Backed:   true,
		MaxTasks: 2,
	}
	report, err := impacc.Run(cfg, func(t *impacc.Task) {
		buf := t.Malloc(800)
		if t.Rank() == 0 {
			v := t.Floats(buf, 100)
			for i := range v {
				v[i] = float64(i)
			}
			t.Send(buf, 100, impacc.Float64, 1, 0, impacc.ReadOnly())
		} else {
			t.Recv(buf, 100, impacc.Float64, 0, 0, impacc.ReadOnly())
			fmt.Println("received, last element:", t.Floats(buf, 100)[99])
		}
	})
	if err != nil {
		panic(err)
	}
	hub := report.TotalHub()
	fmt.Println("aliases:", hub.Aliases, "copies:", hub.FusedCopies)
	// Output:
	// received, last element: 99
	// aliases: 1 copies: 0
}

// Example_unifiedQueue shows Figure 4(c): kernels and MPI transfers ride
// one in-order activity queue, so the host thread issues everything without
// blocking.
func Example_unifiedQueue() {
	cfg := impacc.Config{System: impacc.PSG(), Mode: impacc.IMPACC, MaxTasks: 2}
	_, err := impacc.Run(cfg, func(t *impacc.Task) {
		const n = 1 << 20
		buf0, buf1 := t.Malloc(n), t.Malloc(n)
		t.DataEnter(buf0, n, impacc.Create)
		t.DataEnter(buf1, n, impacc.Create)
		peer := 1 - t.Rank()
		kernel := impacc.KernelSpec{Name: "stage", FLOPs: 1e9, Kind: impacc.KindCompute}

		t.Kernels(kernel, 1) // produce buf0 on queue 1
		t.Isend(buf0, n/8, impacc.Float64, peer, 1, impacc.OnDevice(), impacc.Async(1))
		t.Irecv(buf1, n/8, impacc.Float64, peer, 1, impacc.OnDevice(), impacc.Async(1))
		t.Kernels(kernel, 1) // consume buf1 after the receive completes
		t.ACCWait(1)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("pipeline complete")
	// Output:
	// pipeline complete
}
