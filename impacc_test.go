package impacc_test

import (
	"strings"
	"testing"

	"impacc"
)

// TestQuickstartAPI exercises the public facade end to end: the example
// from the package documentation, plus the IMPACC extension options.
func TestQuickstartAPI(t *testing.T) {
	cfg := impacc.Config{System: impacc.PSG(), Mode: impacc.IMPACC, Backed: true}
	rep, err := impacc.Run(cfg, func(tk *impacc.Task) {
		buf := tk.Malloc(8 * 1024)
		if tk.Rank() == 0 {
			v := tk.Floats(buf, 1024)
			for i := range v {
				v[i] = float64(i)
			}
			tk.Send(buf, 1024, impacc.Float64, 1, 0, impacc.ReadOnly())
		} else if tk.Rank() == 1 {
			tk.Recv(buf, 1024, impacc.Float64, 0, 0, impacc.ReadOnly())
			// Views must be taken *after* an aliasing receive: node heap
			// aliasing replaces the buffer's storage (paper §3.8,
			// requirement 4 — no pre-existing pointers into the region).
			v := tk.Floats(buf, 1024)
			if v[1023] != 1023 {
				t.Error("payload lost")
			}
		}
		tk.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NTasks != 8 {
		t.Fatalf("tasks = %d, want one per PSG GPU", rep.NTasks)
	}
	if rep.TotalHub().Aliases != 1 {
		t.Fatalf("aliases = %d, want 1", rep.TotalHub().Aliases)
	}
}

func TestPublicMappingAndSystems(t *testing.T) {
	if got := len(impacc.BuildMapping(impacc.HeteroDemo(), impacc.MaskOf(impacc.NVIDIAGPU), 0)); got != 3 {
		t.Fatalf("nvidia mapping = %d", got)
	}
	if len(impacc.Titan(4).Nodes) != 4 || len(impacc.Beacon(2).Nodes) != 2 {
		t.Fatal("system constructors wrong")
	}
	f := impacc.DefaultFeatures(impacc.IMPACC)
	if !f.UnifiedQueue || !f.Aliasing {
		t.Fatal("IMPACC defaults missing features")
	}
	if impacc.DefaultFeatures(impacc.Legacy).Fusion {
		t.Fatal("legacy defaults must disable fusion")
	}
}

func TestPublicACCAndKernels(t *testing.T) {
	cfg := impacc.Config{System: impacc.PSG(), Mode: impacc.IMPACC, Backed: true, MaxTasks: 1}
	_, err := impacc.Run(cfg, func(tk *impacc.Task) {
		buf := tk.Malloc(4096)
		tk.DataEnter(buf, 4096, impacc.Copyin)
		tk.Kernels(impacc.KernelSpec{Name: "k", FLOPs: 1e8, Kind: impacc.KindCompute}, 1)
		tk.ACCWait(1)
		tk.DataExit(buf, impacc.Copyout)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCoverage(t *testing.T) {
	if _, err := impacc.ParseClassMask("nvidia"); err != nil {
		t.Fatal(err)
	}
	sys, err := impacc.LoadSystem(strings.NewReader(`{
	  "name": "t", "threadMultiple": true,
	  "nodes": [{"name": "n", "sockets": [{"name": "c", "cores": 4, "gflopsDP": 100}],
	    "hostMemGBs": 8, "nic": {"name": "e", "link": {"latency": 1000, "gbs": 1}},
	    "devices": [{"class": "cpu", "name": "c0", "gflopsDP": 100, "gemmEff": 0.8,
	      "memBWGBs": 20, "stencilEff": 0.5, "kernelLaunch": 1000}]}]
	}`))
	if err != nil || sys.Name != "t" {
		t.Fatalf("LoadSystem: %v", err)
	}
	tr := impacc.NewTracer()
	cfg := impacc.Config{System: sys, Mode: impacc.IMPACC, Backed: true, Trace: tr}
	_, err = impacc.Run(cfg, func(tk *impacc.Task) {
		buf := tk.Malloc(64)
		tk.DataEnter(buf, 64, impacc.Copyin)
		tk.Kernels(impacc.KernelSpec{FLOPs: 1e6, Kind: impacc.KindCompute}, -1)
		tk.DataExit(buf, impacc.Copyout)
		// IMPACC directive options on an integrated device.
		tk.Isend(buf, 1, impacc.Float64, 0, 0, impacc.OnDevice(), impacc.Async(1))
		tk.Irecv(buf, 1, impacc.Float64, 0, 0, impacc.OnDevice(), impacc.Async(1))
		tk.ACCWait(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("tracer collected nothing")
	}
}
