// Command impacc-translate is the IMPACC compiler front-end demonstrator
// (paper §3.1): it parses the OpenACC directives of a C-like source file —
// including the "#pragma acc mpi" extension of §3.5 — validates them,
// prints the lowered runtime-call plan, and shows the global-to-
// thread-local rewriting the threaded-MPI execution model requires.
//
// Usage:
//
//	impacc-translate file.c
//	impacc-translate -rewrite file.c   # emit the transformed source
//	echo '...' | impacc-translate -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"impacc/internal/accparse"
)

func main() {
	var (
		rewrite = flag.Bool("rewrite", false, "emit source with __thread storage added")
		plan    = flag.Bool("plan", true, "print the lowered runtime-call plan")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: impacc-translate [-rewrite] [-plan] <file.c|->")
		os.Exit(2)
	}
	name := flag.Arg(0)
	var src []byte
	var err error
	if name == "-" {
		src, err = io.ReadAll(os.Stdin)
		name = "<stdin>"
	} else {
		src, err = os.ReadFile(name)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "impacc-translate: %v\n", err)
		os.Exit(1)
	}

	f, err := accparse.Parse(name, string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "impacc-translate: %v\n", err)
		os.Exit(1)
	}

	if *rewrite {
		out, _ := accparse.RewriteThreadLocal(string(src))
		fmt.Print(out)
		return
	}

	fmt.Printf("%s: %d acc directive(s), %d IMPACC mpi directive(s)\n",
		name, len(f.Directives), len(f.MPIDirectives()))
	for _, d := range f.Directives {
		fmt.Printf("  line %-4d #pragma acc %s", d.Line, d.Kind)
		for _, c := range d.Clauses {
			fmt.Printf(" %s", c)
		}
		fmt.Println()
		if d.MPICall != nil {
			fmt.Printf("             -> %s\n", d.MPICall)
		}
	}
	if len(f.Globals) > 0 {
		fmt.Printf("thread-local rewrites (threaded-MPI tasks, §3.1):\n")
		for _, g := range f.Globals {
			kind := "global"
			if g.Static {
				kind = "static"
			}
			fmt.Printf("  line %-4d %-6s %s\n", g.Line, kind, g.Name)
		}
	}
	if *plan {
		ops, err := accparse.Lower(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "impacc-translate: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("lowered runtime plan:")
		for _, op := range ops {
			fmt.Printf("  line %-4d %s\n", op.Line, op)
		}
	}
}
