// Command impacc-run launches one of the bundled evaluation applications
// on a simulated system — the mpirun/aprun of the framework. Unlike
// mpirun, the user specifies nodes, not tasks: the runtime creates one
// task per accelerator automatically (paper §3.2).
//
// Examples:
//
//	impacc-run -app jacobi -system psg -n 1024 -iters 20
//	impacc-run -app dgemm -system beacon:4 -mode legacy -n 2048
//	impacc-run -app lulesh -system titan:27 -edge 16 -steps 5
//	impacc-run -app ep -system psg -class C
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"impacc/internal/apps"
	"impacc/internal/core"
	"impacc/internal/fault"
	"impacc/internal/sim"
	"impacc/internal/telemetry"
	"impacc/internal/topo"
)

func parseSystem(s string) (*topo.System, error) {
	if strings.HasSuffix(s, ".json") {
		f, err := os.Open(s)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return topo.LoadSystem(f)
	}
	return topo.Preset(s)
}

func parseStyle(s string) (apps.Style, error) {
	switch s {
	case "sync":
		return apps.StyleSync, nil
	case "async":
		return apps.StyleAsync, nil
	case "unified":
		return apps.StyleUnified, nil
	}
	return 0, fmt.Errorf("unknown style %q (sync, async, unified)", s)
}

var epClasses = map[string]apps.EPClass{
	"S": apps.EPClassS, "W": apps.EPClassW, "A": apps.EPClassA,
	"B": apps.EPClassB, "C": apps.EPClassC, "D": apps.EPClassD,
	"E": apps.EPClassE, "64xE": apps.EPClassT,
}

func main() {
	var (
		app     = flag.String("app", "jacobi", "application: dgemm, ep, jacobi, lulesh")
		system  = flag.String("system", "psg", "system: psg, beacon:N, titan:N, hetero, fattree:k, dragonfly:g,a,p, gemini:X,Y,Z, or a .json file")
		mode    = flag.String("mode", "impacc", "runtime: impacc or legacy")
		style   = flag.String("style", "", "programming style: sync, async, unified (default: unified for impacc, async for legacy)")
		tasks   = flag.Int("tasks", 0, "cap the task count (0 = one per accelerator)")
		device  = flag.String("devices", "", "IMPACC_ACC_DEVICE_TYPE selection, e.g. nvidia|xeonphi")
		n       = flag.Int("n", 1024, "problem size (matrix/mesh edge)")
		iters   = flag.Int("iters", 10, "jacobi iterations")
		class   = flag.String("class", "A", "EP class: S W A B C D E 64xE")
		edge    = flag.Int("edge", 16, "lulesh per-task mesh edge")
		steps   = flag.Int("steps", 5, "lulesh steps")
		verify  = flag.Bool("verify", false, "verify results against serial references (forces -backed)")
		backed  = flag.Bool("backed", false, "attach real storage (compute genuine data)")
		seed    = flag.Uint64("seed", 2016, "random seed")
		trace   = flag.String("trace", "", "write a Chrome-trace timeline (view in Perfetto) to this file")
		profile = flag.String("prof", "", "write an mpiP-style profile (critical path, imbalance, top sites) to this file (JSON if it ends in .json, text otherwise)")
		report  = flag.String("report", "", "write the full run report as JSON to this file")
		metrics = flag.String("metrics", "", "write the run's telemetry snapshot to this file (Prometheus text if it ends in .prom, JSON otherwise)")
		chaos   = flag.String("chaos", "", "deterministic fault injection, seed:spec (e.g. '7:degrade=*:4,rdmaflap=1:2ms:500us,straggle=0:1.5')")
		parSim  = flag.Int("par-sim", 1, "worker threads driving the sharded simulation engine (wall-clock only; any value produces byte-identical output)")
		lean    = flag.Bool("lean", false, "memory-lean big-run mode: aggregate per-rank telemetry and heartbeats above 256 ranks, require streaming traces (-trace-stream); no-op on small systems")

		progressEvery  = flag.String("progress-every", "", "emit a progress heartbeat every this much virtual time (e.g. 1ms); content is deterministic for any -par-sim value")
		progress       = flag.String("progress", "", "write heartbeats as JSON lines to this file (default stderr)")
		traceStream    = flag.String("trace-stream", "", "stream trace records to this file as JSON lines while the run executes (bounded memory; convert or analyze later with impacc-prof); mutually exclusive with -trace/-prof")
		streamBuffered = flag.Bool("trace-stream-buffered", false, "with -trace-stream: buffer records in memory and write the stream at run end; the bytes must match the streamed path exactly (equivalence checks, CI)")
		flightRec      = flag.String("flight-recorder", "", "arm the stall flight recorder and write its dump (recent events per shard + parked processes) to this file if the run ends abnormally")
		flightRing     = flag.Int("flight-ring", 64, "per-shard depth of the flight recorder's recent-event ring")

		maxVTime  = flag.String("max-vtime", "", "fail the run past this much virtual time (e.g. 2s, 500ms; 0 = unlimited)")
		maxEvents = flag.Int64("max-events", 0, "fail the run past this many simulation events (0 = unlimited)")
		maxAlloc  = flag.Int64("max-alloc", 0, "fail the run past this many task heap bytes (0 = unlimited)")
	)
	flag.Parse()

	sys, err := parseSystem(*system)
	fatal(err)

	m := core.IMPACC
	switch *mode {
	case "impacc":
	case "legacy":
		m = core.Legacy
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	st := apps.StyleUnified
	if m == core.Legacy {
		st = apps.StyleAsync
	}
	if *style != "" {
		st, err = parseStyle(*style)
		fatal(err)
	}
	if *verify {
		*backed = true
	}

	mask, err := topo.ParseClassMask(*device)
	fatal(err)
	cfg := core.Config{
		System: sys, Mode: m, MaxTasks: *tasks, DeviceTypes: mask,
		Backed: *backed, Seed: *seed, JitterPct: 1, Parallel: *parSim,
		Lean: *lean,
	}
	if *chaos != "" {
		cfg.Chaos, err = fault.ParseSpec(*chaos)
		fatal(err)
	}
	if *maxVTime != "" {
		d, err := sim.ParseDur(*maxVTime)
		fatal(err)
		cfg.Limits.MaxVirtualTime = d
	}
	cfg.Limits.MaxEvents = *maxEvents
	cfg.Limits.MaxAllocBytes = *maxAlloc
	var streamFile *os.File
	if *traceStream != "" {
		if *trace != "" || *profile != "" {
			// A streaming tracer ships records as windows close and keeps
			// nothing in memory, so there is no graph left to render a
			// Chrome trace or profile from at run end.
			fatal(fmt.Errorf("-trace-stream is mutually exclusive with -trace and -prof (analyze the stream post-hoc)"))
		}
		streamFile, err = os.Create(*traceStream)
		fatal(err)
		if *streamBuffered {
			cfg.Trace = core.NewTracer()
		} else {
			cfg.Trace = core.NewStreamTracer(core.NewStreamWriter(streamFile))
		}
	} else if *trace != "" || *profile != "" {
		cfg.Trace = core.NewTracer()
	}
	var progressFlush func() error
	if *progressEvery != "" {
		every, err := sim.ParseDur(*progressEvery)
		fatal(err)
		out := os.Stderr
		if *progress != "" && *progress != "-" {
			f, err := os.Create(*progress)
			fatal(err)
			out = f
		}
		bw := bufio.NewWriter(out)
		cfg.Progress = &core.Progress{Every: every, Emit: core.NewBufferedHeartbeatWriter(bw)}
		progressFlush = bw.Flush
	} else if *progress != "" {
		fatal(fmt.Errorf("-progress requires -progress-every"))
	}
	if *flightRec != "" {
		cfg.FlightRing = *flightRing
	}

	var prog core.Program
	switch *app {
	case "dgemm":
		prog = apps.DGEMM(apps.DGEMMConfig{N: *n, Style: st, Verify: *verify})
	case "ep":
		c, ok := epClasses[*class]
		if !ok {
			fatal(fmt.Errorf("unknown EP class %q", *class))
		}
		shift := 0
		if *backed {
			shift = 12 // execute a sample of the pairs, price the full class
		}
		prog = apps.EP(apps.EPConfig{Class: c, Style: st, SampleShift: shift, Verify: *verify})
	case "jacobi":
		prog = apps.Jacobi(apps.JacobiConfig{N: *n, Iters: *iters, Style: st, Verify: *verify})
	case "lulesh":
		prog = apps.LULESH(apps.LULESHConfig{Edge: *edge, Steps: *steps, Verify: *verify})
	default:
		fatal(fmt.Errorf("unknown app %q", *app))
	}

	rt, err := core.NewRuntime(cfg)
	fatal(err)
	rep, runErr := rt.Execute(prog)
	// Observers finish regardless of how the run ended: heartbeats flush,
	// and a streamed trace gets its end record (the stream stays a valid,
	// analyzable artifact even for a failed run).
	if progressFlush != nil {
		fatal(progressFlush())
	}
	if streamFile != nil {
		var makespan sim.Time
		if rep != nil {
			makespan = sim.Time(rep.Elapsed)
		}
		if *streamBuffered {
			fatal(cfg.Trace.WriteStream(streamFile, makespan))
		} else {
			fatal(cfg.Trace.CloseStream(makespan))
		}
		fatal(streamFile.Close())
	}
	if runErr != nil {
		if *flightRec != "" {
			if st := rt.Stall(); st != nil {
				f, err := os.Create(*flightRec)
				fatal(err)
				fatal(st.WriteJSON(f))
				fatal(f.Close())
				fmt.Fprintf(os.Stderr, "impacc-run: flight recorder (%s, parked: %s) -> %s\n",
					st.Reason, strings.Join(st.ParkedRanks(), " "), *flightRec)
			}
		}
		fatal(runErr)
	}
	rep.Print(os.Stdout)
	fmt.Printf("  per-task: comm max %v, kernel mean %v\n", rep.MaxComm(), rep.MeanKernel())
	if *traceStream != "" {
		fmt.Printf("  trace stream -> %s\n", *traceStream)
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		fatal(err)
		fatal(cfg.Trace.WriteChromeTrace(f))
		fatal(f.Close())
		fmt.Printf("  trace: %d spans -> %s\n", cfg.Trace.Len(), *trace)
	}
	if *profile != "" {
		f, err := os.Create(*profile)
		fatal(err)
		if strings.HasSuffix(*profile, ".json") {
			fatal(rep.Prof.WriteJSON(f))
		} else {
			fatal(rep.Prof.WriteText(f))
		}
		fatal(f.Close())
		fmt.Printf("  profile: %d sites -> %s\n", len(rep.Prof.Sites), *profile)
	}
	if *report != "" {
		f, err := os.Create(*report)
		fatal(err)
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		fatal(enc.Encode(rep))
		fatal(f.Close())
		fmt.Printf("  report -> %s\n", *report)
	}
	if *metrics != "" {
		fatal(writeMetrics(*metrics, rep.Metrics))
		fmt.Printf("  metrics: %d families -> %s\n", len(rep.Metrics.Families), *metrics)
	}
}

// writeMetrics stores a telemetry snapshot at path: Prometheus text
// exposition when the path ends in .prom, indented JSON otherwise.
func writeMetrics(path string, snap *telemetry.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".prom") {
		err = snap.WritePrometheus(f)
	} else {
		err = snap.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "impacc-run: %v\n", err)
		os.Exit(1)
	}
}
