package main

import (
	"bytes"
	"strconv"
	"testing"

	"impacc/internal/apps"
	"impacc/internal/core"
	"impacc/internal/device"
	"impacc/internal/msg"
	"impacc/internal/topo"
)

// jacobiReport executes one seeded jacobi run and returns its report.
func jacobiReport(t *testing.T) *core.Report {
	t.Helper()
	cfg := core.Config{
		System: topo.Beacon(2), Mode: core.IMPACC,
		Backed: true, Seed: 2016, JitterPct: 1,
	}
	prog := apps.Jacobi(apps.JacobiConfig{N: 128, Iters: 3, Style: apps.StyleUnified})
	rep, err := core.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestMetricsDeterminism runs the same seeded configuration twice and
// requires byte-identical snapshots in both export formats: the registry is
// keyed by virtual time, so any divergence is a simulation nondeterminism
// bug.
func TestMetricsDeterminism(t *testing.T) {
	var runs [2]struct{ js, prom bytes.Buffer }
	for i := range runs {
		rep := jacobiReport(t)
		if rep.Metrics == nil {
			t.Fatal("report has no metrics snapshot")
		}
		if err := rep.Metrics.WriteJSON(&runs[i].js); err != nil {
			t.Fatal(err)
		}
		if err := rep.Metrics.WritePrometheus(&runs[i].prom); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(runs[0].js.Bytes(), runs[1].js.Bytes()) {
		t.Error("JSON snapshots differ between identical seeded runs")
	}
	if !bytes.Equal(runs[0].prom.Bytes(), runs[1].prom.Bytes()) {
		t.Error("Prometheus snapshots differ between identical seeded runs")
	}
	if runs[0].js.Len() == 0 || runs[0].prom.Len() == 0 {
		t.Fatal("empty metrics export")
	}
}

// TestMetricsContents cross-checks the snapshot against the run report:
// utilization gauges lie in [0,1], kernel histogram counts equal the
// report's kernel count, copy histogram totals equal the copied bytes, and
// the hub counter families match the hub stats.
func TestMetricsContents(t *testing.T) {
	rep := jacobiReport(t)
	snap := rep.Metrics

	util := snap.Family(topo.LinkUtilization)
	if util == nil || len(util.Series) == 0 {
		t.Fatal("no link utilization gauges")
	}
	for _, s := range util.Series {
		if s.GaugeValue < 0 || s.GaugeValue > 1 {
			t.Errorf("utilization %v out of [0,1]: %v", s.Labels, s.GaugeValue)
		}
	}

	dev := rep.TotalDev()
	kh := snap.Family(device.KernelDurationNs)
	if kh == nil {
		t.Fatal("no kernel duration histograms")
	}
	var kernels uint64
	for _, s := range kh.Series {
		kernels += s.Count
	}
	if kernels != uint64(dev.KernelCount) {
		t.Errorf("kernel histogram count = %d, report says %d", kernels, dev.KernelCount)
	}

	ch := snap.Family(device.CopyBytes)
	if ch == nil {
		t.Fatal("no copy size histograms")
	}
	var copied int64
	for _, s := range ch.Series {
		copied += s.Sum
	}
	wantCopied := dev.HtoDBytes + dev.DtoHBytes + dev.DtoDBytes + dev.HtoHBytes
	if copied != wantCopied {
		t.Errorf("copy histogram bytes = %d, report says %d", copied, wantCopied)
	}

	hub := rep.TotalHub()
	for fam, want := range map[string]uint64{
		msg.IntraMsgsTotal:   hub.IntraMsgs,
		msg.FusedCopiesTotal: hub.FusedCopies,
		msg.NetOutTotal:      hub.NetOut,
	} {
		f := snap.Family(fam)
		if f == nil {
			t.Errorf("missing hub counter family %q", fam)
			continue
		}
		var got uint64
		for _, s := range f.Series {
			got += uint64(s.Value)
		}
		if got != want {
			t.Errorf("%s total = %d, hub stats say %d", fam, got, want)
		}
	}

	mpiF := snap.Family(core.MPILatencyNs)
	if mpiF == nil || len(mpiF.Series) == 0 {
		t.Fatal("no MPI latency histograms")
	}
	ranks := map[string]bool{}
	for _, s := range mpiF.Series {
		ranks[s.Label("rank")] = true
	}
	if len(ranks) != rep.NTasks {
		t.Errorf("MPI histograms cover %d ranks, want %d", len(ranks), rep.NTasks)
	}
	for r := range ranks {
		if _, err := strconv.Atoi(r); err != nil {
			t.Errorf("bad rank label %q", r)
		}
	}
}
