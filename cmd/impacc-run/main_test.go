package main

import (
	"os"
	"path/filepath"
	"testing"

	"impacc/internal/apps"
)

func TestParseSystemPresets(t *testing.T) {
	cases := map[string]struct {
		nodes int
		ok    bool
	}{
		"psg":       {1, true},
		"beacon:4":  {4, true},
		"titan:16":  {16, true},
		"beacon":    {2, true}, // default node count
		"hetero":    {3, true},
		"beacon:0":  {0, false},
		"beacon:-1": {0, false},
		"beacon:x":  {0, false},
		"cray":      {0, false},
	}
	for in, want := range cases {
		sys, err := parseSystem(in)
		if want.ok && (err != nil || len(sys.Nodes) != want.nodes) {
			t.Errorf("parseSystem(%q) = %v, %v; want %d nodes", in, sys, err, want.nodes)
		}
		if !want.ok && err == nil {
			t.Errorf("parseSystem(%q) should fail", in)
		}
	}
}

func TestParseSystemJSONFile(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "minicluster.json")
	if _, err := os.Stat(path); err != nil {
		t.Skip("testdata not present")
	}
	sys, err := parseSystem(path)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name != "mini" || len(sys.Nodes) != 2 {
		t.Fatalf("loaded system = %q with %d nodes", sys.Name, len(sys.Nodes))
	}
	if _, err := parseSystem("missing.json"); err == nil {
		t.Fatal("missing config file must fail")
	}
}

func TestParseStyle(t *testing.T) {
	for in, want := range map[string]apps.Style{
		"sync": apps.StyleSync, "async": apps.StyleAsync, "unified": apps.StyleUnified,
	} {
		got, err := parseStyle(in)
		if err != nil || got != want {
			t.Errorf("parseStyle(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseStyle("turbo"); err == nil {
		t.Fatal("unknown style must fail")
	}
}

func TestEPClassTable(t *testing.T) {
	for _, name := range []string{"S", "W", "A", "B", "C", "D", "E", "64xE"} {
		if _, ok := epClasses[name]; !ok {
			t.Errorf("EP class %q missing", name)
		}
	}
}
