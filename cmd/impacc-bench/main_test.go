package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"impacc/internal/telemetry"
)

// TestSmokeFig6 drives the full command path through realMain on a fast
// experiment and checks it produces the expected table.
func TestSmokeFig6(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := realMain([]string{"-exp", "fig6", "-quick"}, &out, &errb); rc != 0 {
		t.Fatalf("realMain = %d, stderr:\n%s", rc, errb.String())
	}
	s := out.String()
	if s == "" {
		t.Fatal("no output")
	}
	for _, want := range []string{"==== fig6:", "HtoD", "IMPACC copies"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestSmokeList covers the -list path.
func TestSmokeList(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := realMain([]string{"-list"}, &out, &errb); rc != 0 {
		t.Fatalf("realMain = %d", rc)
	}
	if !strings.Contains(out.String(), "fig9") {
		t.Fatalf("-list missing fig9:\n%s", out.String())
	}
}

// TestSmokeUnknownExperiment checks the error path returns a usage code.
func TestSmokeUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := realMain([]string{"-exp", "fig99"}, &out, &errb); rc != 2 {
		t.Fatalf("realMain = %d, want 2", rc)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Fatalf("stderr = %q", errb.String())
	}
}

// TestMetricsAggregate runs an experiment with -metrics and checks the
// aggregate snapshot holds non-empty series from every run of the sweep.
func TestMetricsAggregate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	var out, errb bytes.Buffer
	if rc := realMain([]string{"-exp", "fig6", "-quick", "-metrics", path}, &out, &errb); rc != 0 {
		t.Fatalf("realMain = %d, stderr:\n%s", rc, errb.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if len(snap.Families) == 0 {
		t.Fatal("aggregate snapshot has no families")
	}
	found := map[string]bool{}
	for _, f := range snap.Families {
		found[f.Name] = len(f.Series) > 0
	}
	for _, fam := range []string{"msg_intra_msgs_total", "msg_fused_copies_total", "device_copy_bytes"} {
		if !found[fam] {
			t.Errorf("aggregate snapshot missing non-empty family %q", fam)
		}
	}
}

// TestProfDeterministicAcrossJobs runs the same profiled sweep serially and
// with 8 workers; the aggregate profile JSON must be byte-identical.
func TestProfDeterministicAcrossJobs(t *testing.T) {
	dir := t.TempDir()
	run := func(jobs string, path string) []byte {
		var out, errb bytes.Buffer
		args := []string{"-exp", "fig6", "-quick", "-j", jobs, "-prof", path}
		if rc := realMain(args, &out, &errb); rc != 0 {
			t.Fatalf("realMain -j %s = %d, stderr:\n%s", jobs, rc, errb.String())
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	serial := run("1", filepath.Join(dir, "serial.json"))
	parallel := run("8", filepath.Join(dir, "parallel.json"))
	if !bytes.Equal(serial, parallel) {
		t.Errorf("profile JSON differs between -j 1 and -j 8:\n%s\n---\n%s", serial, parallel)
	}
	var ap struct {
		Runs       int              `json:"runs"`
		CritPathNs map[string]int64 `json:"critical_path_ns"`
		MakespanNs int64            `json:"makespan_ns"`
	}
	if err := json.Unmarshal(serial, &ap); err != nil {
		t.Fatalf("profile not JSON: %v", err)
	}
	if ap.Runs == 0 {
		t.Fatal("aggregate profile saw no runs")
	}
	var sum int64
	for _, v := range ap.CritPathNs {
		sum += v
	}
	if sum != ap.MakespanNs {
		t.Errorf("aggregate critical path %d != summed makespan %d", sum, ap.MakespanNs)
	}
}
