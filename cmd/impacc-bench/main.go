// Command impacc-bench regenerates the paper's evaluation tables and
// figures (Table 1, Figures 2 and 5-15) plus the ablation studies.
//
// Usage:
//
//	impacc-bench -list
//	impacc-bench -exp fig9
//	impacc-bench -exp fig10,fig11 -quick
//	impacc-bench -exp all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"impacc/internal/bench"
	"impacc/internal/fault"
	"impacc/internal/prof"
	"impacc/internal/sim"
	"impacc/internal/telemetry"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain runs the benchmark driver; split from main so tests can invoke
// the full command without spawning a process.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("impacc-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list available experiments")
		exp     = fs.String("exp", "all", "comma-separated experiment ids, or 'all'")
		quick   = fs.Bool("quick", false, "shrink sweeps for a fast run")
		csv     = fs.String("csv", "", "also write <id>.csv files with the raw series into this directory")
		metrics = fs.String("metrics", "", "write the aggregate telemetry of every run to this file (Prometheus text if it ends in .prom, JSON otherwise)")
		profile = fs.String("prof", "", "trace every run and write the aggregate profile (critical path, top sites) to this file (JSON if it ends in .json, text otherwise)")
		jobs    = fs.Int("j", runtime.GOMAXPROCS(0), "run up to N simulations concurrently (output stays byte-identical)")
		parSim  = fs.Int("par-sim", 1, "worker threads inside each simulation's sharded engine (output stays byte-identical)")
		lean    = fs.Bool("lean", false, "memory-lean big-run mode on every leaf run: aggregate per-rank telemetry above 256 ranks (no-op on small systems)")
		flight  = fs.Int("flight-ring", 0, "arm the stall flight recorder on every leaf run with this per-shard ring depth; abnormal ends name the parked ranks (0 = off)")
		chaos   = fs.String("chaos", "", "deterministic fault injection applied to every run, seed:spec (see impacc-run -chaos)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf = fs.String("memprofile", "", "write a heap profile (after GC) to this file on exit")

		maxVTime  = fs.String("max-vtime", "", "fail any leaf run past this much virtual time (e.g. 2s; 0 = unlimited)")
		maxEvents = fs.Int64("max-events", 0, "fail any leaf run past this many simulation events (0 = unlimited)")
		maxAlloc  = fs.Int64("max-alloc", 0, "fail any leaf run past this many task heap bytes (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(stderr, "impacc-bench: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "impacc-bench: cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(stderr, "impacc-bench: memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "impacc-bench: memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	if *list {
		for _, e := range bench.All {
			fmt.Fprintf(stdout, "%-10s %s\n", e.ID, e.Title)
		}
		return 0
	}

	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.All
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(stderr, "impacc-bench: unknown experiment %q (try -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	opt := bench.Options{Quick: *quick, ParSim: *parSim, FlightRing: *flight, Lean: *lean}.WithJobs(*jobs)
	if *maxVTime != "" {
		d, err := sim.ParseDur(*maxVTime)
		if err != nil {
			fmt.Fprintf(stderr, "impacc-bench: max-vtime: %v\n", err)
			return 2
		}
		opt.Limits.MaxVirtualTime = d
	}
	opt.Limits.MaxEvents = *maxEvents
	opt.Limits.MaxAllocBytes = *maxAlloc
	if *chaos != "" {
		spec, err := fault.ParseSpec(*chaos)
		if err != nil {
			fmt.Fprintf(stderr, "impacc-bench: chaos: %v\n", err)
			return 2
		}
		opt.Chaos = spec
	}
	if *metrics != "" {
		// One registry shared by every run of every selected experiment:
		// counters and histograms aggregate across the whole sweep (each run
		// merges its private registry on completion, so concurrent runs are
		// safe and order-independent).
		opt.Metrics = telemetry.NewRegistry()
	}
	if *profile != "" {
		// One aggregate shared by every run; Add is commutative so the
		// snapshot is byte-identical for any -j.
		opt.Prof = prof.NewAggregate()
	}
	// Experiments run through the worker pool (up to -j simulations at once)
	// with buffered output, then print in canonical order: the bytes on
	// stdout are identical for any -j.
	for _, r := range bench.RunMany(selected, opt) {
		fmt.Fprintf(stdout, "==== %s: %s ====\n", r.Exp.ID, r.Exp.Title)
		stdout.Write(r.Output)
		if r.Err != nil {
			fmt.Fprintf(stderr, "impacc-bench: %s: %v\n", r.Exp.ID, r.Err)
			return 1
		}
		fmt.Fprintf(stdout, "(%s wall)\n\n", r.Wall.Round(time.Millisecond))
		if *csv != "" {
			if err := writeCSV(*csv, r.Exp.ID, opt); err != nil {
				fmt.Fprintf(stderr, "impacc-bench: csv %s: %v\n", r.Exp.ID, err)
				return 1
			}
		}
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics, opt.Metrics.Snapshot(0)); err != nil {
			fmt.Fprintf(stderr, "impacc-bench: metrics: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "metrics -> %s\n", *metrics)
	}
	if *profile != "" {
		if err := writeProfile(*profile, opt.Prof.Snapshot(prof.DefaultTopSites)); err != nil {
			fmt.Fprintf(stderr, "impacc-bench: prof: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "profile -> %s\n", *profile)
	}
	return 0
}

// writeProfile stores the aggregate profile at path: indented JSON when the
// path ends in .json, the human-readable table otherwise.
func writeProfile(path string, ap *prof.AggProfile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = ap.WriteJSON(f)
	} else {
		err = ap.WriteText(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeMetrics stores a telemetry snapshot at path: Prometheus text
// exposition when the path ends in .prom, indented JSON otherwise.
func writeMetrics(path string, snap *telemetry.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".prom") {
		err = snap.WritePrometheus(f)
	} else {
		err = snap.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeCSV stores an experiment's raw series under dir/<id>.csv.
func writeCSV(dir, id string, opt bench.Options) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	ok, err := bench.WriteCSV(id, f, opt)
	if err != nil {
		return err
	}
	if !ok {
		os.Remove(f.Name()) // experiment has no tabular form
	}
	return nil
}
