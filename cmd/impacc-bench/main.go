// Command impacc-bench regenerates the paper's evaluation tables and
// figures (Table 1, Figures 2 and 5-15) plus the ablation studies.
//
// Usage:
//
//	impacc-bench -list
//	impacc-bench -exp fig9
//	impacc-bench -exp fig10,fig11 -quick
//	impacc-bench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"impacc/internal/bench"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		exp   = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		quick = flag.Bool("quick", false, "shrink sweeps for a fast run")
		csv   = flag.String("csv", "", "also write <id>.csv files with the raw series into this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.All
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "impacc-bench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opt := bench.Options{Quick: *quick}
	for _, e := range selected {
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "impacc-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s wall)\n\n", time.Since(start).Round(time.Millisecond))
		if *csv != "" {
			if err := writeCSV(*csv, e.ID, opt); err != nil {
				fmt.Fprintf(os.Stderr, "impacc-bench: csv %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	}
}

// writeCSV stores an experiment's raw series under dir/<id>.csv.
func writeCSV(dir, id string, opt bench.Options) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	ok, err := bench.WriteCSV(id, f, opt)
	if err != nil {
		return err
	}
	if !ok {
		os.Remove(f.Name()) // experiment has no tabular form
	}
	return nil
}
