// Command impacc-bench regenerates the paper's evaluation tables and
// figures (Table 1, Figures 2 and 5-15) plus the ablation studies.
//
// Usage:
//
//	impacc-bench -list
//	impacc-bench -exp fig9
//	impacc-bench -exp fig10,fig11 -quick
//	impacc-bench -exp all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"impacc/internal/bench"
	"impacc/internal/telemetry"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain runs the benchmark driver; split from main so tests can invoke
// the full command without spawning a process.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("impacc-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list available experiments")
		exp     = fs.String("exp", "all", "comma-separated experiment ids, or 'all'")
		quick   = fs.Bool("quick", false, "shrink sweeps for a fast run")
		csv     = fs.String("csv", "", "also write <id>.csv files with the raw series into this directory")
		metrics = fs.String("metrics", "", "write the aggregate telemetry of every run to this file (Prometheus text if it ends in .prom, JSON otherwise)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range bench.All {
			fmt.Fprintf(stdout, "%-10s %s\n", e.ID, e.Title)
		}
		return 0
	}

	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.All
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(stderr, "impacc-bench: unknown experiment %q (try -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	opt := bench.Options{Quick: *quick}
	if *metrics != "" {
		// One registry shared by every run of every selected experiment:
		// counters and histograms aggregate across the whole sweep.
		opt.Metrics = telemetry.NewRegistry()
	}
	for _, e := range selected {
		fmt.Fprintf(stdout, "==== %s: %s ====\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(stdout, opt); err != nil {
			fmt.Fprintf(stderr, "impacc-bench: %s: %v\n", e.ID, err)
			return 1
		}
		fmt.Fprintf(stdout, "(%s wall)\n\n", time.Since(start).Round(time.Millisecond))
		if *csv != "" {
			if err := writeCSV(*csv, e.ID, opt); err != nil {
				fmt.Fprintf(stderr, "impacc-bench: csv %s: %v\n", e.ID, err)
				return 1
			}
		}
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics, opt.Metrics.Snapshot(0)); err != nil {
			fmt.Fprintf(stderr, "impacc-bench: metrics: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "metrics -> %s\n", *metrics)
	}
	return 0
}

// writeMetrics stores a telemetry snapshot at path: Prometheus text
// exposition when the path ends in .prom, indented JSON otherwise.
func writeMetrics(path string, snap *telemetry.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".prom") {
		err = snap.WritePrometheus(f)
	} else {
		err = snap.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeCSV stores an experiment's raw series under dir/<id>.csv.
func writeCSV(dir, id string, opt bench.Options) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	ok, err := bench.WriteCSV(id, f, opt)
	if err != nil {
		return err
	}
	if !ok {
		os.Remove(f.Name()) // experiment has no tabular form
	}
	return nil
}
