package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read the server's stdout while realMain writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := realMain([]string{"-nonsense"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if code := realMain([]string{"-max-vtime", "10parsecs"}, &out, &errOut); code != 2 {
		t.Fatalf("bad duration exit = %d, want 2", code)
	}
}

// TestServeSmoke boots the real command on an ephemeral port, runs one job
// twice, and asserts the second submission is a cache hit with identical
// bytes — the same flow the CI serve-smoke job drives with curl.
func TestServeSmoke(t *testing.T) {
	var stdout, stderr syncBuffer
	go realMain([]string{"-addr", "127.0.0.1:0", "-workers", "1"}, &stdout, &stderr)

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stderr: %s", stderr.String())
		}
		if s := stdout.String(); strings.Contains(s, "listening on ") {
			addr := strings.TrimSpace(strings.SplitN(s, "listening on ", 2)[1])
			base = "http://" + addr
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	spec := `{"system":"beacon:2","app":"jacobi","n":64,"iters":2}`
	submit := func() (map[string]any, int) {
		resp, err := http.Post(base+"/v1/jobs?wait=1", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st, resp.StatusCode
	}
	st1, code := submit()
	if code != 200 || st1["state"] != "done" {
		t.Fatalf("first submit -> %d %v", code, st1)
	}
	st2, code := submit()
	if code != 200 || st2["cached"] != true {
		t.Fatalf("second submit -> %d %v, want cache hit", code, st2)
	}

	get := func(path string) []byte {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s -> %d", path, resp.StatusCode)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	key := st1["key"].(string)
	a := get("/v1/jobs/" + key + "/report")
	b := get("/v1/jobs/" + key + "/report")
	if !bytes.Equal(a, b) || len(a) == 0 {
		t.Fatal("report fetches not byte-identical")
	}
	metrics := string(get("/metrics"))
	if !strings.Contains(metrics, "serve_cache_hits_total 1") {
		t.Fatalf("metrics missing hit count:\n%s", metrics)
	}
}
