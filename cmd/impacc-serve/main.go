// Command impacc-serve runs the simulator as a service: an HTTP/JSON API
// that accepts job submissions (system preset, application, mode, seed,
// chaos spec), executes them deterministically on a bounded worker pool,
// and answers repeated submissions from a content-addressed result cache —
// byte-identical to the original run, because runs are pure functions of
// their configuration.
//
// Examples:
//
//	impacc-serve -addr 127.0.0.1:8080
//	curl -X POST localhost:8080/v1/jobs?wait=1 -d '{"system":"beacon:2","app":"jacobi","n":256,"iters":5}'
//	curl localhost:8080/v1/jobs/<key>/report
//	curl localhost:8080/metrics
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"impacc/internal/core"
	"impacc/internal/serve"
	"impacc/internal/sim"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain runs the server; split from main so tests can drive the full
// command without spawning a process. It returns once the listener dies.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("impacc-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address")
		workers    = fs.Int("workers", 2, "concurrent simulations")
		queueCap   = fs.Int("queue", 16, "admission queue capacity (full queue returns 429)")
		cacheBytes = fs.Int64("cache-bytes", 64<<20, "result cache byte bound (LRU eviction)")
		retryAfter = fs.Int("retry-after", 1, "Retry-After seconds advertised on 429")
		progEvery  = fs.String("progress-every", "1ms", "default virtual-time heartbeat interval for /events feeds (per-job progress_every overrides)")
		flightRing = fs.Int("flight-ring", 64, "per-shard stall flight recorder depth armed on every run")
		maxVTime   = fs.String("max-vtime", "10s", "fail any job past this much virtual time (0 = unlimited)")
		maxEvents  = fs.Int64("max-events", 50_000_000, "fail any job past this many simulation events (0 = unlimited)")
		maxAlloc   = fs.Int64("max-alloc", 1<<31, "fail any job past this many task heap bytes (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var limits core.Limits
	if *maxVTime != "" && *maxVTime != "0" {
		d, err := sim.ParseDur(*maxVTime)
		if err != nil {
			fmt.Fprintf(stderr, "impacc-serve: max-vtime: %v\n", err)
			return 2
		}
		limits.MaxVirtualTime = d
	}
	limits.MaxEvents = *maxEvents
	limits.MaxAllocBytes = *maxAlloc

	var every sim.Dur
	if *progEvery != "" {
		d, err := sim.ParseDur(*progEvery)
		if err != nil {
			fmt.Fprintf(stderr, "impacc-serve: progress-every: %v\n", err)
			return 2
		}
		every = d
	}

	srv := serve.New(serve.Config{
		Workers:       *workers,
		QueueCap:      *queueCap,
		CacheBytes:    *cacheBytes,
		RetryAfterSec: *retryAfter,
		ProgressEvery: every,
		FlightRing:    *flightRing,
		Limits:        limits,
	})
	srv.Start()
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "impacc-serve: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "impacc-serve: listening on %s\n", ln.Addr())
	if err := (&http.Server{Handler: srv.Handler()}).Serve(ln); err != nil {
		fmt.Fprintf(stderr, "impacc-serve: %v\n", err)
		return 1
	}
	return 0
}
