// Command impacc-vet is the project's custom static-analysis gate: a
// multichecker over the determinism and process-discipline invariants that
// every IMPACC result rests on. It loads the requested packages (default
// ./...), runs the internal/analysis suite, and prints one line per
// finding; a non-zero exit means the tree violates an invariant.
//
// Usage:
//
//	go run ./cmd/impacc-vet [-json file] [-list] [packages...]
//
// The analyzers and their escape hatches are documented in DESIGN.md §9;
// each finding names the //impacc:allow-<analyzer> annotation that can
// suppress it (with a mandatory reason).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"impacc/internal/analysis"
	"impacc/internal/analysis/atomicmix"
	"impacc/internal/analysis/globalrand"
	"impacc/internal/analysis/hashcoverage"
	"impacc/internal/analysis/maporder"
	"impacc/internal/analysis/observerpure"
	"impacc/internal/analysis/parkdiscipline"
	"impacc/internal/analysis/sharddiscipline"
	"impacc/internal/analysis/spanbalance"
	"impacc/internal/analysis/walltime"
)

// suite is the full analyzer lineup, in documentation order.
var suite = []*analysis.Analyzer{
	walltime.Analyzer,
	globalrand.Analyzer,
	maporder.Analyzer,
	parkdiscipline.Analyzer,
	spanbalance.Analyzer,
	sharddiscipline.Analyzer,
	atomicmix.Analyzer,
	observerpure.Analyzer,
	hashcoverage.Analyzer,
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("impacc-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.String("json", "", "also write findings as JSON to this file ('-' for stdout)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: impacc-vet [-json file] [-list] [packages...]\n\n")
		fmt.Fprintf(stderr, "Runs the IMPACC determinism/process-discipline analyzer suite\n")
		fmt.Fprintf(stderr, "over the given package patterns (default ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "impacc-vet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(suite, pkgs)
	if err != nil {
		fmt.Fprintf(stderr, "impacc-vet: %v\n", err)
		return 2
	}

	cwd, _ := os.Getwd()
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s: %s: %s\n", relPos(cwd, d.Pos), d.Analyzer, d.Message)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, stdout, cwd, pkgs, diags); err != nil {
			fmt.Fprintf(stderr, "impacc-vet: %v\n", err)
			return 2
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "impacc-vet: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// relPos renders a position with the file path relative to cwd when
// possible, keeping output stable across checkouts.
func relPos(cwd string, pos interface{ String() string }) string {
	s := pos.String()
	if cwd == "" {
		return s
	}
	if rel, err := filepath.Rel(cwd, strings.SplitN(s, ":", 2)[0]); err == nil && !strings.HasPrefix(rel, "..") {
		if i := strings.Index(s, ":"); i >= 0 {
			return rel + s[i:]
		}
		return rel
	}
	return s
}

// jsonFinding is the machine-readable artifact format uploaded by CI on
// gate failure.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func writeJSON(path string, stdout io.Writer, cwd string, pkgs []*analysis.Package, diags []analysis.Diagnostic) error {
	// The analyzed-package list makes coverage auditable: the tree gate
	// asserts new packages appear here, so nothing ships outside the vet
	// net by accident.
	packages := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		if p.Standard || p.DepOnly {
			continue
		}
		packages = append(packages, p.ImportPath)
	}
	sort.Strings(packages)
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		findings = append(findings, jsonFinding{
			Analyzer: d.Analyzer,
			File:     file,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	out := struct {
		Packages []string      `json:"packages"`
		Findings []jsonFinding `json:"findings"`
	}{packages, findings}
	var w io.Writer
	if path == "-" {
		w = stdout
	} else {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
