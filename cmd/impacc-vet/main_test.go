package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{
		"walltime", "globalrand", "maporder", "parkdiscipline", "spanbalance",
		"sharddiscipline", "atomicmix", "observerpure", "hashcoverage",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

// TestTreeClean is the gate itself: the whole module must vet clean. A
// deliberately reintroduced time.Now() in internal/sim (or anywhere else)
// fails this test and therefore CI.
func TestTreeClean(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{"-json", "-", "impacc/..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("impacc-vet impacc/... exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	// The findings block is the tail of stdout (after zero finding lines).
	var report struct {
		Packages []string `json:"packages"`
		Findings []struct {
			Analyzer string `json:"analyzer"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("bad -json output: %v\n%s", err, out.String())
	}
	if len(report.Findings) != 0 {
		t.Fatalf("clean run reported findings: %s", out.String())
	}
	// Coverage assertion: every package with its own determinism or
	// wall-clock discipline story must be under the vet net. A package
	// missing here was silently excluded from analysis.
	covered := map[string]bool{}
	for _, p := range report.Packages {
		covered[p] = true
	}
	for _, want := range []string{
		"impacc/internal/sim",
		"impacc/internal/core",
		"impacc/internal/bench",
		"impacc/internal/fault",
		"impacc/internal/serve",
		"impacc/cmd/impacc-serve",
	} {
		if !covered[want] {
			t.Errorf("package %s not analyzed (packages: %v)", want, report.Packages)
		}
	}
}

// TestBadFixtureFails proves the gate actually bites: the fixture under
// testdata/bad violates walltime, globalrand, and maporder, and the run
// must exit non-zero with one finding per violation.
func TestBadFixtureFails(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{"-json", "-", "./testdata/bad"}, &out, &errb)
	if code != 1 {
		t.Fatalf("expected exit 1 on bad fixture, got %d\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	for _, want := range []string{
		"walltime", "globalrand", "maporder", "atomicmix", "allowstale",
		"time.Now", "rand.Intn", "append inside map iteration",
		"call to Clock transitively", "mixed access tears", "suppresses nothing",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("findings missing %q:\n%s", want, out.String())
		}
	}
}

// TestBadFixtureExactSet pins the gate's behavior to the byte: the findings
// on testdata/bad must equal testdata/bad/expected.json exactly — analyzer,
// position, and message. A new analyzer that starts (or stops) firing on the
// fixture, or a reworded diagnostic, must update the committed expectation.
func TestBadFixtureExactSet(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-json", "-", "./testdata/bad"}, &out, &errb); code != 1 {
		t.Fatalf("expected exit 1 on bad fixture, got %d (stderr: %s)", code, errb.String())
	}
	type finding struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Message  string `json:"message"`
	}
	var got, want struct {
		Findings []finding `json:"findings"`
	}
	// stdout carries the human-readable finding lines first, then the JSON
	// block (the -json '-' form); parse from the opening brace.
	raw := out.Bytes()
	if i := bytes.IndexByte(raw, '{'); i >= 0 {
		raw = raw[i:]
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("bad -json output: %v\n%s", err, out.String())
	}
	data, err := os.ReadFile(filepath.Join("testdata", "bad", "expected.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("bad expected.json: %v", err)
	}
	if len(got.Findings) != len(want.Findings) {
		t.Errorf("got %d findings, want %d", len(got.Findings), len(want.Findings))
	}
	for i := 0; i < len(got.Findings) || i < len(want.Findings); i++ {
		var g, w *finding
		if i < len(got.Findings) {
			g = &got.Findings[i]
		}
		if i < len(want.Findings) {
			w = &want.Findings[i]
		}
		switch {
		case g == nil:
			t.Errorf("missing expected finding #%d: %+v", i, *w)
		case w == nil:
			t.Errorf("unexpected extra finding #%d: %+v", i, *g)
		case *g != *w:
			t.Errorf("finding #%d mismatch:\n  got  %+v\n  want %+v", i, *g, *w)
		}
	}
}

// TestJSONArtifact checks the CI artifact file path: findings are written
// as structured JSON with repo-relative file paths.
func TestJSONArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "findings.json")
	var out, errb bytes.Buffer
	if code := realMain([]string{"-json", path, "./testdata/bad"}, &out, &errb); code != 1 {
		t.Fatalf("expected exit 1, got %d (stderr: %s)", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("bad JSON artifact: %v\n%s", err, data)
	}
	if len(report.Findings) < 3 {
		t.Fatalf("expected >= 3 findings in artifact, got %d", len(report.Findings))
	}
	for _, f := range report.Findings {
		if f.Analyzer == "" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("artifact file path should be repo-relative, got %q", f.File)
		}
	}
}
