// Package bad is a fixture with deliberate invariant violations. It lives
// under testdata/ so wildcard patterns (./..., impacc/...) never match it;
// the impacc-vet tests load it explicitly to prove the gate fails loudly.
package bad

import (
	"math/rand"
	"sync/atomic"
	"time"
)

// Clock smuggles wall-clock time into what pretends to be sim state.
func Clock() int64 {
	return time.Now().UnixNano()
}

// Stamp hides the clock read behind the helper above; the interprocedural
// half of walltime flags this call site too, naming the origin.
func Stamp() int64 {
	return Clock()
}

// Pick draws from the process-global generator.
func Pick(n int) int {
	return rand.Intn(n)
}

// Keys leaks map iteration order into a slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// counter mixes sync/atomic and plain access to the same field.
type counter struct{ n int64 }

// Add goes through sync/atomic...
func (c *counter) Add() { atomic.AddInt64(&c.n, 1) }

// ...but Read tears.
func (c *counter) Read() int64 { return c.n }

// Stale carries a reasoned annotation that suppresses nothing; the
// allowstale pseudo-analyzer flags the rotten escape hatch itself.
func Stale() int {
	//impacc:allow-walltime stale: nothing here reads the clock anymore
	return 42
}
