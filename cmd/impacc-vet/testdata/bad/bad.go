// Package bad is a fixture with deliberate invariant violations. It lives
// under testdata/ so wildcard patterns (./..., impacc/...) never match it;
// the impacc-vet tests load it explicitly to prove the gate fails loudly.
package bad

import (
	"math/rand"
	"time"
)

// Clock smuggles wall-clock time into what pretends to be sim state.
func Clock() int64 {
	return time.Now().UnixNano()
}

// Pick draws from the process-global generator.
func Pick(n int) int {
	return rand.Intn(n)
}

// Keys leaks map iteration order into a slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
