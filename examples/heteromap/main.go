// Heteromap demonstrates automatic task-device mapping on a heterogeneous
// cluster (paper §3.2, Figure 2): the user picks device types with a bit
// field; the runtime creates one task per matching accelerator and the
// program load-balances by querying acc_get_device_type.
package main

import (
	"fmt"
	"log"

	"impacc"
)

func main() {
	sys := impacc.HeteroDemo() // 3 unlike nodes: GPUs, Phis, CPU-only

	for _, sel := range []struct {
		name string
		mask impacc.ClassMask
	}{
		{"acc_device_default", 0},
		{"acc_device_nvidia", impacc.MaskOf(impacc.NVIDIAGPU)},
		{"acc_device_nvidia|xeonphi", impacc.MaskOf(impacc.NVIDIAGPU, impacc.XeonPhi)},
	} {
		fmt.Printf("IMPACC_ACC_DEVICE_TYPE=%s\n", sel.name)
		cfg := impacc.Config{System: sys, Mode: impacc.IMPACC, DeviceTypes: sel.mask, Backed: true}
		_, err := impacc.Run(cfg, func(t *impacc.Task) {
			// Manual load balancing à la §3.2: give flop-heavy work to
			// GPUs, less to Phis, least to CPU sets.
			var share float64
			switch t.DeviceType() {
			case impacc.NVIDIAGPU:
				share = 4
			case impacc.XeonPhi:
				share = 3
			default:
				share = 1
			}
			t.Kernels(impacc.KernelSpec{
				Name: "work", FLOPs: share * 1e9, Kind: impacc.KindCompute}, -1)
			// Per-class communicator: tasks driving the same accelerator
			// kind coordinate among themselves (MPI_Comm_split).
			classComm := t.World().Split(int(t.DeviceType()), t.Rank())
			in, out := t.Malloc(8), t.Malloc(8)
			t.Floats(in, 1)[0] = share
			classComm.Allreduce(in, out, 1, impacc.Float64, impacc.Sum)
			fmt.Printf("  rank %2d -> node %d device %d (%v), share %v, class total %v (of %d peers)\n",
				t.Rank(), t.NodeIdx(), t.DeviceIndex(), t.DeviceType(), share,
				t.Floats(out, 1)[0], classComm.Size())
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
