// DGEMM reproduces the paper's blocked matrix-multiply study (§4.2) at
// desk scale, with verification on: the root distributes read-only inputs
// that IMPACC shares across same-node tasks via node heap aliasing instead
// of copying.
package main

import (
	"fmt"
	"log"

	"impacc"
	"impacc/internal/apps"
	"impacc/internal/core"
)

func main() {
	const n = 512

	for _, mode := range []impacc.Mode{impacc.IMPACC, impacc.Legacy} {
		style := apps.StyleUnified
		if mode == impacc.Legacy {
			style = apps.StyleAsync
		}
		cfg := impacc.Config{System: impacc.PSG(), Mode: mode, Backed: true, Seed: 11}
		rep, err := core.Run(cfg, apps.DGEMM(apps.DGEMMConfig{N: n, Style: style, Verify: true}))
		if err != nil {
			log.Fatal(err)
		}
		hub := rep.TotalHub()
		fmt.Printf("%-14s %d tasks  elapsed %-12v aliases %-3d fused copies %-3d (verified)\n",
			mode, rep.NTasks, rep.Elapsed, hub.Aliases, hub.FusedCopies)
	}
	fmt.Println("\nUnder IMPACC the read-only A-blocks and the broadcast B matrix are")
	fmt.Println("shared through the unified node virtual address space (Figure 7):")
	fmt.Println("the distribution costs reference-count updates, not memory copies.")
}
