// Pipeline demonstrates the unified activity queue (paper §3.6, Figure 4c):
// kernels and MPI transfers ride the same in-order OpenACC queue, so the
// host thread issues the whole exchange pipeline without a single blocking
// wait — compare the host-captive times printed for each style.
package main

import (
	"fmt"
	"log"

	"impacc"
)

const (
	bufBytes = 8 << 20
	iters    = 6
)

func pipeline(style string) (elapsed, hostCaptive impacc.Dur) {
	cfg := impacc.Config{System: impacc.PSG(), Mode: impacc.IMPACC, MaxTasks: 2}
	issue := make([]impacc.Dur, 2)
	rep, err := impacc.Run(cfg, func(t *impacc.Task) {
		peer := 1 - t.Rank()
		buf0, buf1 := t.Malloc(bufBytes), t.Malloc(bufBytes)
		t.DataEnter(buf0, bufBytes, impacc.Create)
		t.DataEnter(buf1, bufBytes, impacc.Create)
		count := bufBytes / 8
		spec := impacc.KernelSpec{Name: "stage", FLOPs: 40 * float64(count), Kind: impacc.KindCompute}

		for i := 0; i < iters; i++ {
			switch style {
			case "sync": // Figure 4 (a)
				t.Kernels(spec, -1)
				t.UpdateHost(buf0, bufBytes, -1)
				if t.Rank() == 0 {
					t.Send(buf0, count, impacc.Float64, peer, 1)
					t.Recv(buf1, count, impacc.Float64, peer, 1)
				} else {
					t.Recv(buf1, count, impacc.Float64, peer, 1)
					t.Send(buf0, count, impacc.Float64, peer, 1)
				}
				t.UpdateDevice(buf1, bufBytes, -1)
				t.Kernels(spec, -1)
			default: // Figure 4 (c): everything on queue 1, host never blocks
				t.Kernels(spec, 1)
				t.Isend(buf0, count, impacc.Float64, peer, 1, impacc.OnDevice(), impacc.Async(1))
				t.Irecv(buf1, count, impacc.Float64, peer, 1, impacc.OnDevice(), impacc.Async(1))
				t.Kernels(spec, 1)
			}
		}
		issue[t.Rank()] = impacc.Dur(t.Now()) // host done issuing
		if style != "sync" {
			t.ACCWait(1)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	captive := issue[0]
	if issue[1] > captive {
		captive = issue[1]
	}
	return rep.Elapsed, captive
}

func main() {
	for _, style := range []string{"sync", "unified"} {
		elapsed, captive := pipeline(style)
		fmt.Printf("%-8s elapsed %-12v host-captive %v\n", style, elapsed, captive)
	}
	fmt.Println("\nThe unified activity queue frees the host thread almost immediately")
	fmt.Println("while the device queues drive kernels and MPI transfers in order.")
}
