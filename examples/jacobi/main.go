// Jacobi runs the 2-D stencil of the paper's evaluation (§4.2) under both
// runtimes and reports the device-to-device halo-exchange advantage of
// IMPACC's message fusion + GPUDirect path (Figures 13 and 14).
package main

import (
	"fmt"
	"log"

	"impacc"
	"impacc/internal/apps"
	"impacc/internal/core"
)

func run(mode impacc.Mode, style apps.Style, n, iters int) *impacc.Report {
	cfg := impacc.Config{System: impacc.PSG(), Mode: mode, Seed: 7}
	rep, err := core.Run(cfg, apps.Jacobi(apps.JacobiConfig{N: n, Iters: iters, Style: style}))
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	const n, iters = 2048, 20

	impaccRep := run(impacc.IMPACC, apps.StyleUnified, n, iters)
	legacyRep := run(impacc.Legacy, apps.StyleAsync, n, iters)

	fmt.Printf("2-D Jacobi, %dx%d mesh, %d sweeps, 8 tasks on PSG\n\n", n, n, iters)
	fmt.Printf("%-14s %12s %16s %12s\n", "runtime", "elapsed", "copy time", "HtoH copies")
	di := impaccRep.TotalDev()
	dl := legacyRep.TotalDev()
	fmt.Printf("%-14s %12v %16v %12d\n", "IMPACC", impaccRep.Elapsed,
		di.DtoDTime+di.DtoHTime+di.HtoDTime+di.HtoHTime, di.HtoHCount)
	fmt.Printf("%-14s %12v %16v %12d\n", "MPI+OpenACC", legacyRep.Elapsed,
		dl.DtoDTime+dl.DtoHTime+dl.HtoDTime+dl.HtoHTime, dl.HtoHCount)
	fmt.Printf("\nspeedup: %.2fx — halos move device-to-device over PCIe instead of\n",
		legacyRep.Elapsed.Seconds()/impaccRep.Elapsed.Seconds())
	fmt.Println("staging through both hosts (paper Figure 14).")
}
