// Quickstart: launch one MPI task per accelerator of a simulated PSG node,
// pass a token around the ring, and reduce a checksum — the smallest
// complete IMPACC program.
package main

import (
	"fmt"
	"log"
	"os"

	"impacc"
)

func main() {
	cfg := impacc.Config{
		System: impacc.PSG(), // 1 node, 8 GPUs -> 8 tasks, no -np needed
		Mode:   impacc.IMPACC,
		Backed: true, // real data so we can verify the ring
	}
	rep, err := impacc.Run(cfg, func(t *impacc.Task) {
		rank, size := t.Rank(), t.Size()
		buf := t.Malloc(8)

		// Ring: rank 0 injects a token; everyone increments and forwards.
		if rank == 0 {
			t.Floats(buf, 1)[0] = 1
			t.Send(buf, 1, impacc.Float64, 1, 0)
			t.Recv(buf, 1, impacc.Float64, size-1, 0)
			got := t.Floats(buf, 1)[0]
			fmt.Printf("ring token after %d hops: %v (want %v)\n", size, got, float64(size))
		} else {
			t.Recv(buf, 1, impacc.Float64, rank-1, 0)
			t.Floats(buf, 1)[0]++
			t.Send(buf, 1, impacc.Float64, (rank+1)%size, 0)
		}

		// Global reduction: sum of ranks.
		in, out := t.Malloc(8), t.Malloc(8)
		t.Floats(in, 1)[0] = float64(rank)
		t.Allreduce(in, out, 1, impacc.Float64, impacc.Sum)
		if rank == 0 {
			fmt.Printf("allreduce sum of ranks: %v\n", t.Floats(out, 1)[0])
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	rep.Print(os.Stdout)
}
