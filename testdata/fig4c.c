/* Figure 4 (c) of the IMPACC paper: the unified activity queue. The
 * compiler front-end (impacc-translate) parses these directives, validates
 * the IMPACC mpi extension, lowers the runtime plan, and rewrites globals
 * to be thread-local for threaded-MPI execution. */
#include <mpi.h>

int n = 1024;                 /* rewritten to __thread */
static double norm;           /* rewritten to static __thread */
double buf0[1024], buf1[1024];

void exchange(int dst, int src, int tag, MPI_Comm comm) {
    static long calls;        /* rewritten to static __thread */
    MPI_Request req[2];
    int i;
    double x;
    calls++;

#pragma acc enter data create(buf0[0:n], buf1[0:n])

#pragma acc kernels loop async(1)
    for (i = 0; i < n; i++) { buf0[i] = i * 0.5; }

#pragma acc mpi sendbuf(device) async(1)
    MPI_Isend(buf0, n, MPI_DOUBLE, dst, tag, comm, &req[0]);
#pragma acc mpi recvbuf(device) async(1)
    MPI_Irecv(buf1, n, MPI_DOUBLE, src, tag, comm, &req[1]);

#pragma acc kernels loop async(1)
    for (i = 0; i < n; i++) { x = buf1[i]; }

#pragma acc wait(1)
#pragma acc exit data copyout(buf1[0:n]) delete(buf0)
}
