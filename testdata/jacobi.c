/* 1-D Jacobi sweep in the paper's MPI+OpenACC style, exercising structured
 * data regions, updates, halo exchange with the IMPACC directive, and
 * cross-queue waits. Input for impacc-translate. */
#include <mpi.h>

#define N 4096
double grid[N + 2][N], next[N + 2][N];
static int rank, size;

void sweep(int iters, MPI_Comm comm) {
    int it, i, j;
    MPI_Request req[4];

#pragma acc data copyin(grid[0:N+2][0:N]) create(next[0:N+2][0:N])
    {
        for (it = 0; it < iters; it++) {
#pragma acc mpi sendbuf(device) async(1)
            MPI_Isend(grid[1], N, MPI_DOUBLE, rank - 1, 0, comm, &req[0]);
#pragma acc mpi recvbuf(device) async(1)
            MPI_Irecv(grid[0], N, MPI_DOUBLE, rank - 1, 0, comm, &req[1]);

#pragma acc parallel loop gang vector async(1)
            for (i = 1; i <= N; i++)
                for (j = 0; j < N; j++)
                    next[i][j] = 0.25 * (grid[i-1][j] + grid[i+1][j]);

#pragma acc wait(1) async(2)
#pragma acc update self(next[1:1][0:N]) async(2)
        }
#pragma acc wait
    }
}
