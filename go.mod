module impacc

go 1.23
