package impacc_test

// One testing.B benchmark per paper table/figure (quick-mode sweeps; run
// `impacc-bench -exp <id>` for the full parameter ranges). The benchmarks
// report the headline metric of each figure via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the whole evaluation's shape.

import (
	"io"
	"testing"

	"impacc"
	"impacc/internal/apps"
	"impacc/internal/bench"
	"impacc/internal/core"
)

var quick = bench.Options{Quick: true}

func runExperiment(b *testing.B, id string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Systems(b *testing.B)   { runExperiment(b, "table1") }
func BenchmarkFig2TaskMapping(b *testing.B) { runExperiment(b, "fig2") }

func BenchmarkFig5UnifiedQueue(b *testing.B) {
	var res []bench.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.Fig5(quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		b.ReportMetric(r.Elapsed.Seconds()*1e3, r.Style.String()+"-elapsed-ms")
		b.ReportMetric(r.IssueSpan.Seconds()*1e3, r.Style.String()+"-captive-ms")
	}
}

func BenchmarkFig6MessageFusion(b *testing.B) {
	var res []bench.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.Fig6(quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		b.ReportMetric(float64(r.LegacyCopies), r.Pair+"-mpix-copies")
		b.ReportMetric(float64(r.IMPACCCopies), r.Pair+"-impacc-copies")
	}
}

func BenchmarkFig7Aliasing(b *testing.B) {
	var res []bench.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.Fig7(quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		name := "plain"
		if r.ReadOnly {
			name = "readonly"
		}
		b.ReportMetric(r.Elapsed.Seconds()*1e6, name+"-recv-us")
	}
}

func BenchmarkFig8NUMAPinning(b *testing.B) {
	var rows []bench.Fig8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig8(quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	var worst float64 = 1
	for _, r := range rows {
		if ratio := r.NearGBs / r.FarGBs; ratio > worst {
			worst = ratio
		}
	}
	b.ReportMetric(worst, "max-near/far")
}

func BenchmarkFig9P2P(b *testing.B) {
	var rows []bench.Fig9Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig9(quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	var dtod float64
	for _, r := range rows {
		if r.Panel == "PSG-intra DtoD" && r.IMPACCGBs/r.MPIXGBs > dtod {
			dtod = r.IMPACCGBs / r.MPIXGBs
		}
	}
	b.ReportMetric(dtod, "psg-dtod-gain")
}

func reportSpeedups(b *testing.B, rows []bench.SpeedupRow) {
	// Report the last (largest task count) row per panel.
	last := map[string]bench.SpeedupRow{}
	for _, r := range rows {
		last[r.Panel] = r
	}
	for panel, r := range last {
		b.ReportMetric(r.IMPACC, panel+"-impacc-x")
		b.ReportMetric(r.MPIX, panel+"-mpix-x")
	}
}

func BenchmarkFig10DGEMM(b *testing.B) {
	var rows []bench.SpeedupRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig10(quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpeedups(b, rows)
}

func BenchmarkFig11DGEMMBreakdown(b *testing.B) { runExperiment(b, "fig11") }

func BenchmarkFig12EP(b *testing.B) {
	var rows []bench.SpeedupRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig12(quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpeedups(b, rows)
}

func BenchmarkFig13Jacobi(b *testing.B) {
	var rows []bench.SpeedupRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig13(quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpeedups(b, rows)
}

func BenchmarkFig14JacobiDtoD(b *testing.B) {
	var rows []bench.Fig14Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig14(quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	r := rows[len(rows)-1]
	staged := r.MPIXDtoH + r.MPIXHtoH + r.MPIXHtoD
	b.ReportMetric(staged.Seconds()/r.IMPACCDtoD.Seconds(), "staged/direct")
}

func BenchmarkFig15LULESH(b *testing.B) {
	var rows []bench.SpeedupRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig15(quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpeedups(b, rows)
}

// Ablation benches: the per-technique on/off costs of DESIGN.md §4.

func benchAblation(b *testing.B, technique string) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Ablations(quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Technique == technique {
			b.ReportMetric(r.Gain(), "disable-cost-x")
			return
		}
	}
	b.Fatalf("technique %s not measured", technique)
}

func BenchmarkAblationAliasing(b *testing.B)     { benchAblation(b, "node-heap-aliasing") }
func BenchmarkAblationP2P(b *testing.B)          { benchAblation(b, "direct-p2p-dtod") }
func BenchmarkAblationRDMA(b *testing.B)         { benchAblation(b, "gpudirect-rdma") }
func BenchmarkAblationUnifiedQueue(b *testing.B) { benchAblation(b, "unified-activity-queue") }
func BenchmarkAblationThreadSerial(b *testing.B) { benchAblation(b, "mpi-thread-multiple") }
func BenchmarkAblationNUMAPinning(b *testing.B)  { benchAblation(b, "numa-pinning") }

// BenchmarkSimulatorThroughput measures raw engine performance: wall time
// for a full 8-task unified-queue Jacobi run (the simulator's hot path).
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	prog := apps.Jacobi(apps.JacobiConfig{N: 512, Iters: 10, Style: apps.StyleUnified})
	for i := 0; i < b.N; i++ {
		cfg := impacc.Config{System: impacc.PSG(), Mode: impacc.IMPACC, Seed: 1}
		if _, err := core.Run(cfg, prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJacobi2DPartitioning compares the paper's 1-D Jacobi partition
// against the communicator-based 2-D extension at equal task counts: the
// 2-D tile moves O(N/sqrt(P)) halo data per side instead of O(N).
func BenchmarkJacobi2DPartitioning(b *testing.B) {
	cfg := impacc.Config{System: impacc.PSG(), Mode: impacc.IMPACC, Seed: 1}
	var t1, t2 float64
	for i := 0; i < b.N; i++ {
		r1, err := core.Run(cfg, apps.Jacobi(apps.JacobiConfig{N: 2048, Iters: 10, Style: apps.StyleUnified}))
		if err != nil {
			b.Fatal(err)
		}
		r2, err := core.Run(cfg, apps.Jacobi2D(apps.Jacobi2DConfig{N: 2048, Iters: 10, Style: apps.StyleUnified}))
		if err != nil {
			b.Fatal(err)
		}
		t1, t2 = r1.Elapsed.Seconds(), r2.Elapsed.Seconds()
	}
	b.ReportMetric(t1*1e3, "1d-ms")
	b.ReportMetric(t2*1e3, "2d-ms")
}
